"""Declarative experiment specifications: the RunSpec/GridSpec layer.

Every experiment in the paper is a grid of simulations plus a little
arithmetic on the results.  This module makes that structure *data*:

* :class:`RunSpec` — one simulation cell (workload × scheme/config ×
  params × trace length/seed), frozen and hashable.  Its canonical form
  is the key for the in-process memo in :mod:`repro.core.sweep` and for
  the persistent disk cache (:mod:`repro.core.diskcache`), so any two
  paths that describe the same simulation share one result.
* :class:`GridSpec` — a labelled (row × column) grid of cells, each
  optionally paired with a baseline cell, plus a named derived-metric
  reducer (speedup-over-baseline, stall coverage, MPKI, ...) and an
  optional geomean/avg summary row.  :func:`run_grid_spec` turns a
  GridSpec into a rendered :class:`ExperimentResult` through the shared
  cached/parallel sweep path.
* :class:`SampleSpec` — the SMARTS-style sampling axis: a sampled grid
  cell expands into N independently-seeded window RunSpecs that flow
  through the same sweep path (each window is cached individually and
  fans across cores), and the per-window metric values aggregate into a
  mean with a 95% confidence interval
  (:class:`~repro.core.sampling.SampleStats`) surfaced in tables and
  JSON output.
* :class:`TableSpec` — trace-analysis experiments (Table 1, Figures 3
  and 4) that characterise traces without running the timing engine,
  expressed as rows of named analyses.

Experiment modules declare a spec and (at most) a small post-processing
hook; the registry and the ``python -m repro`` CLI run them uniformly.
DESIGN.md Section 8 documents the layer and how to add an experiment.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import MicroarchParams, SchemeConfig
from repro.config.schemes import ShotgunSizes
from repro.core.sampling import SampleStats, aggregate
from repro.core.metrics import (
    SimulationResult,
    arithmetic_mean,
    frontend_stall_coverage,
    geometric_mean,
    speedup,
)
from repro.errors import ExperimentError
from repro.experiments.reporting import ExperimentResult

#: Default trace length (dynamic basic blocks) for experiment runs.
#: Chosen so that a full six-workload, three-scheme comparison finishes
#: in minutes on a laptop while statistics are stable (DESIGN.md:
#: "reduced traces").
DEFAULT_TRACE_BLOCKS = 120_000


# ---------------------------------------------------------------------------
# RunSpec: one simulation cell
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One simulation: workload × scheme/config × params × length/seed.

    ``config``/``params`` default to the scheme's/machine's reference
    configuration; ``n_blocks=None`` is a placeholder filled in when the
    owning spec is executed (so experiment specs stay static data while
    the CLI's ``--blocks`` still applies).  :meth:`canonical` resolves
    every default, yielding the unique hashable form that cache layers
    key off.
    """

    workload: str
    scheme: str
    config: Optional[SchemeConfig] = None
    params: Optional[MicroarchParams] = None
    n_blocks: Optional[int] = None
    seed: int = 0

    def canonical(self, n_blocks: Optional[int] = None) -> "RunSpec":
        """The fully-resolved, normalised form of this spec.

        Defaults are filled (workload and scheme names lowered — both
        are case-insensitive downstream — reference config and params
        substituted, trace length resolved), so two specs that describe
        the same simulation canonicalise to equal — and equally
        hashable — values.  Idempotent.
        """
        scheme = self.scheme.lower()
        blocks = self.n_blocks
        if blocks is None:
            blocks = n_blocks if n_blocks is not None else DEFAULT_TRACE_BLOCKS
        return RunSpec(
            workload=self.workload.lower(),
            scheme=scheme,
            config=self.config if self.config is not None
            else SchemeConfig(name=scheme),
            params=self.params if self.params is not None
            else MicroarchParams(),
            n_blocks=blocks,
            seed=self.seed,
        )

    def disk_key(self) -> str:
        """Content address of this cell in the persistent disk cache."""
        from repro.core import diskcache
        return diskcache.spec_key(self.canonical())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (round-trips via from_dict).

        Defaults resolve through :meth:`canonical`, but an
        ``n_blocks=None`` placeholder is preserved so serialised specs
        stay parametric in the trace length.
        """
        spec = self.canonical()
        return {
            "workload": spec.workload,
            "scheme": spec.scheme,
            "config": asdict(spec.config),
            "params": asdict(spec.params),
            "n_blocks": self.n_blocks,
            "seed": spec.seed,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        config = dict(payload["config"])
        config["shotgun_sizes"] = ShotgunSizes(**config["shotgun_sizes"])
        return RunSpec(
            workload=payload["workload"],
            scheme=payload["scheme"],
            config=SchemeConfig(**config),
            params=MicroarchParams(**payload["params"]),
            n_blocks=payload["n_blocks"],
            seed=payload["seed"],
        )


def transform_spec(spec: RunSpec, *,
                   scheme: Optional[str] = None,
                   config: Optional[Mapping[str, Any]] = None,
                   params: Optional[Mapping[str, Any]] = None) -> RunSpec:
    """The params-transform hook: derive a new cell from *spec*.

    Grid axes that sweep a *configuration dimension* rather than a
    scheme (the colocation study's per-degree LLC share, every axis of
    the :mod:`repro.explore` design spaces) are all the same operation:
    resolve the spec's default :class:`SchemeConfig`/
    :class:`MicroarchParams` and replace named fields on top.  ``scheme``
    renames the built scheme (the config's ``name`` follows unless the
    ``config`` overrides pin it); ``config``/``params`` are field->value
    mappings applied through the dataclasses' validating constructors,
    so an invalid value raises :class:`~repro.errors.ConfigError` at
    transform time, not deep inside a run.  The ``n_blocks`` placeholder
    is preserved, keeping transformed specs parametric in trace length.
    """
    name = (scheme if scheme is not None else spec.scheme).lower()
    base_config = spec.config if spec.config is not None \
        else SchemeConfig(name=name)
    base_params = spec.params if spec.params is not None \
        else MicroarchParams()
    config_overrides = dict(config or {})
    if scheme is not None:
        config_overrides.setdefault("name", name)
    new_config = replace(base_config, **config_overrides) \
        if config_overrides else base_config
    new_params = base_params.with_overrides(**dict(params)) \
        if params else base_params
    return replace(spec, scheme=name, config=new_config, params=new_params)


# ---------------------------------------------------------------------------
# SampleSpec: the SMARTS-style sampling axis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SampleSpec:
    """Sampled-simulation axis: N independently-seeded trace windows.

    A sampled cell is measured as ``n_windows`` separate simulations of
    the same (workload, scheme, config, params) cell, each replaying an
    independently-seeded trace window (window ``i`` uses executor seed
    ``seed_base + i``), so the spread across windows reflects genuine
    run-to-run variation.  ``window_blocks=None`` splits the cell's
    trace budget evenly across the windows (``ceil(n_blocks /
    n_windows)`` — SMARTS: the same measured volume, distributed), so a
    sampled run costs roughly what the unsampled run does; an explicit
    value pins every window's length instead.

    Windows are ordinary :class:`RunSpec` cells: they flow through
    :func:`repro.core.sweep.run_specs`, hit the persistent disk cache
    individually (the window seed is part of the key material) and fan
    across cores like any grid cell.
    """

    n_windows: int = 4
    window_blocks: Optional[int] = None
    seed_base: int = 1000

    def __post_init__(self) -> None:
        if self.n_windows < 1:
            raise ExperimentError("SampleSpec needs at least one window")
        if self.window_blocks is not None and self.window_blocks < 1:
            raise ExperimentError("window_blocks must be positive")
        if self.seed_base < 1:
            raise ExperimentError(
                "seed_base must be >= 1 (seed 0 selects the profile's "
                "reference trace, which windows must not alias)"
            )

    def resolve_window_blocks(self, n_blocks: int) -> int:
        """Length of each window given the cell's resolved trace budget."""
        if self.window_blocks is not None:
            return self.window_blocks
        return max(1, -(-n_blocks // self.n_windows))

    def window_specs(self, spec: RunSpec,
                     n_blocks: Optional[int] = None) -> List[RunSpec]:
        """The N canonical window cells that measure *spec* sampled.

        The windows override the cell's own seed — sampling replaces a
        single reference-seed run with an independently-seeded ensemble.
        """
        canonical = spec.canonical(n_blocks)
        blocks = self.resolve_window_blocks(canonical.n_blocks)
        return [
            replace(canonical, n_blocks=blocks, seed=self.seed_base + i)
            for i in range(self.n_windows)
        ]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (round-trips via from_dict)."""
        return {
            "n_windows": self.n_windows,
            "window_blocks": self.window_blocks,
            "seed_base": self.seed_base,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "SampleSpec":
        """Rebuild a sample axis from :meth:`to_dict` output."""
        return SampleSpec(
            n_windows=payload["n_windows"],
            window_blocks=payload.get("window_blocks"),
            seed_base=payload.get("seed_base", 1000),
        )


#: Named CI-aware reducers over per-window metric values.  ``mean`` and
#: ``ci95`` are the two halves of the :class:`SampleStats` a sampled
#: grid surfaces per cell; the CLI's sampled sweep applies them to every
#: headline metric.
SAMPLE_REDUCERS: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda values: aggregate(values).mean,
    "ci95": lambda values: aggregate(values).ci95,
}


# ---------------------------------------------------------------------------
# Derived-metric and summary reducers
# ---------------------------------------------------------------------------

def _require_baseline(base: Optional[SimulationResult],
                      metric: str) -> SimulationResult:
    if base is None:
        raise ExperimentError(
            f"metric {metric!r} needs a baseline cell, but the grid "
            "cell declares none"
        )
    return base


#: Named derived-metric reducers: (cell result, baseline result) -> value.
#: Baseline-relative metrics raise when the cell has no baseline.
METRICS: Dict[str, Callable[[SimulationResult, Optional[SimulationResult]],
                            float]] = {
    "speedup": lambda res, base: speedup(
        _require_baseline(base, "speedup"), res),
    "stall_coverage": lambda res, base: frontend_stall_coverage(
        _require_baseline(base, "stall_coverage"), res),
    "prefetch_accuracy": lambda res, base: res.prefetch_accuracy,
    "l1d_fill_latency": lambda res, base: res.l1d_fill_latency,
    "ipc": lambda res, base: res.ipc,
    "l1i_mpki": lambda res, base: res.l1i_mpki,
    "btb_mpki": lambda res, base: res.btb_mpki,
}

#: Named summary-row reducers for the paper's Gmean/Avg rows.
SUMMARIES: Dict[str, Callable[[Sequence[float]], float]] = {
    "gmean": geometric_mean,
    "avg": arithmetic_mean,
}


# ---------------------------------------------------------------------------
# GridSpec: a labelled grid of cells
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Cell:
    """One labelled grid cell: its spec plus an optional baseline spec."""

    row: str
    col: str
    spec: RunSpec
    baseline: Optional[RunSpec] = None


@dataclass(frozen=True)
class GridSpec:
    """A declarative experiment: labelled cells plus derived metrics.

    ``columns`` fixes column order; rows render in first-appearance
    order of ``cells``.  ``metric`` names a :data:`METRICS` reducer
    applied per cell; ``summary`` optionally names a :data:`SUMMARIES`
    reducer appended as the paper's Gmean/Avg row.  ``chart_baseline``
    becomes the result's structured ``baseline`` field (the value bars
    grow from, e.g. 1.0 for speedups).  ``sample`` switches the grid to
    SMARTS-style sampled measurement: every cell (and its baseline)
    expands into that :class:`SampleSpec`'s windows, the metric is
    computed per window (paired with the baseline's same-seed window)
    and each table cell becomes a mean with a 95% confidence interval.
    """

    experiment_id: str
    title: str
    columns: Tuple[str, ...]
    cells: Tuple[Cell, ...]
    metric: str = "speedup"
    summary: Optional[str] = None
    summary_label: str = ""
    value_format: str = "{:.3f}"
    notes: str = ""
    chart_baseline: Optional[float] = None
    sample: Optional[SampleSpec] = None

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ExperimentError(
                f"{self.experiment_id}: unknown metric {self.metric!r}; "
                f"choose from {sorted(METRICS)}"
            )
        if self.summary is not None and self.summary not in SUMMARIES:
            raise ExperimentError(
                f"{self.experiment_id}: unknown summary {self.summary!r}; "
                f"choose from {sorted(SUMMARIES)}"
            )

    def row_labels(self) -> List[str]:
        """Row labels in render order (first appearance in ``cells``)."""
        seen: List[str] = []
        for cell in self.cells:
            if cell.row not in seen:
                seen.append(cell.row)
        return seen

    def run_specs(self, n_blocks: Optional[int] = None) -> List[RunSpec]:
        """Every distinct canonical simulation the grid needs.

        With a ``sample`` axis each cell contributes its window specs
        instead of its single reference-seed spec.
        """
        unique: Dict[RunSpec, None] = {}
        for cell in self.cells:
            for spec in (cell.spec, cell.baseline):
                if spec is None:
                    continue
                if self.sample is not None:
                    for window in self.sample.window_specs(spec, n_blocks):
                        unique.setdefault(window)
                else:
                    unique.setdefault(spec.canonical(n_blocks))
        return list(unique)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (round-trips via from_dict)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "cells": [
                {
                    "row": cell.row,
                    "col": cell.col,
                    "spec": cell.spec.to_dict(),
                    "baseline": cell.baseline.to_dict()
                    if cell.baseline is not None else None,
                }
                for cell in self.cells
            ],
            "metric": self.metric,
            "summary": self.summary,
            "summary_label": self.summary_label,
            "value_format": self.value_format,
            "notes": self.notes,
            "chart_baseline": self.chart_baseline,
            "sample": self.sample.to_dict()
            if self.sample is not None else None,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "GridSpec":
        """Rebuild a grid spec from :meth:`to_dict` output."""
        cells = tuple(
            Cell(
                row=raw["row"],
                col=raw["col"],
                spec=RunSpec.from_dict(raw["spec"]),
                baseline=RunSpec.from_dict(raw["baseline"])
                if raw.get("baseline") is not None else None,
            )
            for raw in payload["cells"]
        )
        return GridSpec(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            columns=tuple(payload["columns"]),
            cells=cells,
            metric=payload["metric"],
            summary=payload.get("summary"),
            summary_label=payload.get("summary_label", ""),
            value_format=payload.get("value_format", "{:.3f}"),
            notes=payload.get("notes", ""),
            chart_baseline=payload.get("chart_baseline"),
            sample=SampleSpec.from_dict(payload["sample"])
            if payload.get("sample") is not None else None,
        )

    def with_blocks(self, n_blocks: int) -> "GridSpec":
        """A copy with every cell's trace length pinned to *n_blocks*."""
        cells = tuple(
            Cell(
                row=cell.row, col=cell.col,
                spec=replace(cell.spec, n_blocks=n_blocks),
                baseline=replace(cell.baseline, n_blocks=n_blocks)
                if cell.baseline is not None else None,
            )
            for cell in self.cells
        )
        return replace(self, cells=cells)


def run_grid_spec(spec: GridSpec, n_blocks: Optional[int] = None,
                  parallel: Optional[bool] = None,
                  max_workers: Optional[int] = None,
                  use_cache: bool = True,
                  backend=None,
                  progress: Optional[Callable] = None,
                  post: Optional[Callable[[ExperimentResult],
                                          ExperimentResult]] = None,
                  ) -> ExperimentResult:
    """Execute a :class:`GridSpec` through the shared sweep path.

    Distinct canonical cells (baselines dedupe naturally) run through
    the execution-backend layer (``backend`` names or carries a
    :class:`~repro.core.exec.Backend`; ``progress`` observes structured
    events) and hit the in-process/disk caches exactly like
    :func:`repro.core.sweep.run_grid`; the named metric reducer then
    folds raw simulation results into the experiment's table.

    With a ``sample`` axis, every cell's windows run through the same
    path; the metric is evaluated once per window (cell window *i*
    against the baseline's window *i* — pairing on the shared window
    seed cancels common trace variance out of ratio metrics) and each
    table cell carries the window mean plus its 95% confidence
    half-width.
    """
    from repro.core.sweep import run_specs
    results = run_specs(spec.run_specs(n_blocks), parallel=parallel,
                        max_workers=max_workers, use_cache=use_cache,
                        backend=backend, progress=progress)
    metric = METRICS[spec.metric]

    def lookup(run):
        try:
            return results[run]
        except KeyError:
            raise ExperimentError(
                f"{spec.experiment_id}: cell {run.workload}/{run.scheme} "
                f"was quarantined by the fault-tolerant executor; "
                f"experiment tables need every cell — rerun without "
                f"--on-error skip/degrade (or fix the failing cell)"
            ) from None

    values: Dict[str, Dict[str, float]] = {}
    half_widths: Dict[str, Dict[str, float]] = {}
    for cell in spec.cells:
        if spec.sample is not None:
            windows = spec.sample.window_specs(cell.spec, n_blocks)
            base_windows = spec.sample.window_specs(cell.baseline, n_blocks) \
                if cell.baseline is not None else [None] * len(windows)
            stats: SampleStats = aggregate([
                metric(lookup(window),
                       lookup(base) if base is not None else None)
                for window, base in zip(windows, base_windows)
            ])
            values.setdefault(cell.row, {})[cell.col] = stats.mean
            half_widths.setdefault(cell.row, {})[cell.col] = stats.ci95
        else:
            res = lookup(cell.spec.canonical(n_blocks))
            base = lookup(cell.baseline.canonical(n_blocks)) \
                if cell.baseline is not None else None
            values.setdefault(cell.row, {})[cell.col] = metric(res, base)

    result = ExperimentResult(
        experiment_id=spec.experiment_id,
        title=spec.title,
        columns=list(spec.columns),
        value_format=spec.value_format,
        notes=spec.notes,
        baseline=spec.chart_baseline,
        samples=spec.sample.n_windows if spec.sample is not None else None,
    )
    for row in spec.row_labels():
        row_values = values[row]
        missing = [c for c in spec.columns if c not in row_values]
        if missing:
            raise ExperimentError(
                f"{spec.experiment_id}: row {row!r} has no cell for "
                f"columns {missing}"
            )
        result.add_row(
            row, [row_values[c] for c in spec.columns],
            ci=[half_widths[row][c] for c in spec.columns]
            if row in half_widths else None,
        )
    if spec.summary is not None:
        reduce = SUMMARIES[spec.summary]
        result.set_summary(spec.summary_label, [
            reduce(result.column(c)) for c in spec.columns
        ])
    if post is not None:
        result = post(result)
    return result


# ---------------------------------------------------------------------------
# TableSpec: trace-analysis experiments (no timing engine)
# ---------------------------------------------------------------------------

def _analysis_btb_mpki_vs_paper(trace, paper_mpki: float) -> List[float]:
    from repro.workloads.analysis import btb_mpki
    return [btb_mpki(trace), paper_mpki]


def _analysis_region_cdf(trace, distances: Sequence[int],
                         max_distance: int) -> List[float]:
    from repro.workloads.analysis import region_access_distribution
    cdf = region_access_distribution(trace, max_distance=max_distance)
    return [float(cdf[d]) for d in distances]


def _analysis_branch_coverage(trace, points: Sequence[int],
                              unconditional_only: bool) -> List[float]:
    from repro.workloads.analysis import branch_coverage_curve
    _, coverage = branch_coverage_curve(
        trace, tuple(points), unconditional_only=unconditional_only)
    return list(coverage)


#: Named trace analyses: (trace, **kwargs) -> one value per column.
TRACE_ANALYSES: Dict[str, Callable[..., List[float]]] = {
    "btb_mpki_vs_paper": _analysis_btb_mpki_vs_paper,
    "region_cdf": _analysis_region_cdf,
    "branch_coverage": _analysis_branch_coverage,
}


@dataclass(frozen=True)
class TraceRow:
    """One table row: a named analysis of one workload's trace.

    ``args`` is a tuple of (name, value) pairs so the row stays
    hashable; values must be JSON-compatible.
    """

    row: str
    workload: str
    analysis: str
    args: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0


@dataclass(frozen=True)
class TableSpec:
    """A declarative trace-characterisation experiment."""

    experiment_id: str
    title: str
    columns: Tuple[str, ...]
    rows: Tuple[TraceRow, ...]
    value_format: str = "{:.3f}"
    notes: str = ""
    chart_baseline: Optional[float] = None

    def __post_init__(self) -> None:
        for row in self.rows:
            if row.analysis not in TRACE_ANALYSES:
                raise ExperimentError(
                    f"{self.experiment_id}: unknown analysis "
                    f"{row.analysis!r}; choose from {sorted(TRACE_ANALYSES)}"
                )


def run_table_spec(spec: TableSpec, n_blocks: Optional[int] = None,
                   post: Optional[Callable[[ExperimentResult],
                                           ExperimentResult]] = None,
                   ) -> ExperimentResult:
    """Execute a :class:`TableSpec` (traces are memoised per workload)."""
    from repro.workloads.profiles import build_trace
    blocks = n_blocks if n_blocks is not None else DEFAULT_TRACE_BLOCKS
    result = ExperimentResult(
        experiment_id=spec.experiment_id,
        title=spec.title,
        columns=list(spec.columns),
        value_format=spec.value_format,
        notes=spec.notes,
        baseline=spec.chart_baseline,
    )
    for row in spec.rows:
        trace = build_trace(row.workload, blocks, seed=row.seed)
        values = TRACE_ANALYSES[row.analysis](trace, **dict(row.args))
        result.add_row(row.row, values)
    if post is not None:
        result = post(result)
    return result


__all__ = [
    "DEFAULT_TRACE_BLOCKS",
    "RunSpec",
    "transform_spec",
    "SampleSpec",
    "Cell",
    "GridSpec",
    "TraceRow",
    "TableSpec",
    "METRICS",
    "SUMMARIES",
    "SAMPLE_REDUCERS",
    "TRACE_ANALYSES",
    "run_grid_spec",
    "run_table_spec",
]
