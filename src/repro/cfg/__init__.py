"""Control-flow-graph program model and synthetic program generation.

The paper's workloads are commercial server stacks traced under Flexus;
those traces are proprietary, so this package builds synthetic programs
whose *control-flow structure* matches the paper's characterisation data
(Figures 3 and 4, Table 1): layered call graphs of many small functions,
short-offset conditional branches inside functions, calls/returns/traps
between them, and Zipf-distributed hotness.
"""

from repro.cfg.model import (
    BasicBlock,
    CondBehavior,
    Function,
    Program,
    StaticBranch,
)
from repro.cfg.generator import GeneratorParams, generate_program

__all__ = [
    "BasicBlock",
    "CondBehavior",
    "Function",
    "Program",
    "StaticBranch",
    "GeneratorParams",
    "generate_program",
]
