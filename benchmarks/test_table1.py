"""Benchmark: regenerate Table 1 (BTB MPKI without prefetching)."""

from repro.experiments import table1


def test_table1_btb_mpki(run_experiment):
    result = run_experiment(table1.run)
    measured = dict(zip((label for label, _ in result.rows),
                        result.column("measured MPKI")))
    # Shape: OLTP workloads far above the web workloads; Nutch smallest.
    assert measured["Oracle"] > measured["Apache"] > measured["Nutch"]
    assert measured["DB2"] > measured["Zeus"]
    assert measured["Nutch"] < 8.0
