"""Figure 13: Boomerang vs Shotgun across BTB storage budgets.

The indicated BTB size is Boomerang's conventional entry count; Shotgun
uses the equivalent storage budget split across its three structures
(Section 6.5).
"""

from __future__ import annotations

from repro.core.metrics import speedup
from repro.experiments.common import budget_configs, figure_grid
from repro.experiments.reporting import ExperimentResult

BUDGETS = (512, 1024, 2048, 4096, 8192)
WORKLOADS = ("oracle", "db2")


def run(n_blocks: int = 60_000) -> ExperimentResult:
    """Speedup at equal storage budgets on the two OLTP workloads."""
    result = ExperimentResult(
        experiment_id="figure13",
        title=("Figure 13: speedup vs BTB storage budget "
               "(Boomerang entries; Shotgun at equal storage)"),
        columns=[(f"{b // 1024}K" if b >= 1024 else str(b))
                 for b in BUDGETS],
        notes=("Shape target: Shotgun above Boomerang at every budget; "
               "Shotgun at budget B roughly matches Boomerang at 2B or "
               "more."),
    )
    configs = {
        f"{scheme}@{budget}": budget_configs(budget)[scheme]
        for scheme in ("boomerang", "shotgun") for budget in BUDGETS
    }
    grid = figure_grid(("baseline",) + tuple(configs), n_blocks,
                       configs=configs, workloads=WORKLOADS)
    for workload in WORKLOADS:
        base = grid[workload]["baseline"]
        for scheme in ("boomerang", "shotgun"):
            row = []
            for budget in BUDGETS:
                res = grid[workload][f"{scheme}@{budget}"]
                row.append(speedup(base, res))
            result.add_row(
                f"{workload.capitalize()} {scheme.capitalize()}", row
            )
    return result
