"""Synthetic server-program generator.

Server stacks (Section 1 of the paper) are deep: a request traverses a web
server, application logic, database engine and kernel I/O paths.  We model
this as a *layered* call graph:

* layer 0 holds the request-type entry points ("roots"),
* middle layers hold application/library functions,
* the last layer holds kernel trap handlers (entered via TRAP, left via
  TRAP_RET).

Calls always target a strictly deeper layer, which bounds dynamic call
depth by construction and matches the paper's observation that global
control flow forms call/return chains through the stack.  Function hotness
within a layer follows a Zipf distribution, and each call site prefers a
small cluster of callees (modelling modular software).  Conditional
branches inside functions have short forward offsets or short backward
loop offsets, giving the high intra-region spatial locality of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.cfg.model import BasicBlock, CondBehavior, Function, Program
from repro.errors import ProgramError
from repro.isa import BranchKind


@dataclass(frozen=True)
class GeneratorParams:
    """Knobs of the synthetic program generator.

    The six workload profiles in :mod:`repro.workloads.profiles` are
    expressed as instances of this class; see that module for the
    calibration rationale.
    """

    #: Total number of functions, including roots and kernel handlers.
    n_functions: int = 2000
    #: Call-graph layers (software-stack depth).
    n_layers: int = 8
    #: Request-type entry points in layer 0.
    n_roots: int = 12
    #: Fraction of functions placed in the kernel (last) layer.
    kernel_fraction: float = 0.12
    #: Median basic blocks per function (lognormal).
    median_blocks: float = 9.0
    #: Lognormal sigma of blocks-per-function.
    sigma_blocks: float = 0.65
    #: Mean instructions per basic block (clipped to [2, 15]).
    mean_block_instrs: float = 5.5
    #: Fraction of non-terminator blocks ending in a CALL.
    call_fraction: float = 0.14
    #: Fraction of non-terminator blocks ending in an unconditional JUMP.
    jump_fraction: float = 0.05
    #: Fraction of non-terminator blocks ending in a TRAP (kernel entry).
    trap_fraction: float = 0.015
    #: Fraction of call sites that are indirect (several candidates).
    indirect_fraction: float = 0.08
    #: Candidate callees at an indirect call site.
    indirect_fanout: int = 4
    #: Zipf exponent for callee popularity within a layer.
    zipf_callee: float = 0.85
    #: Zipf exponent for request-type (root) popularity.
    zipf_root: float = 0.7
    #: Callee-cluster width per call site, as a fraction of the layer.
    cluster_fraction: float = 0.25
    #: Fraction of conditional branches that are loop back-edges.
    loop_fraction: float = 0.20
    #: Fraction of conditional branches that strictly alternate.
    alternate_fraction: float = 0.03
    #: Taken-probability of strongly biased conditionals.  Biased
    #: outcomes are drawn i.i.d., so ``1 - hot_bias`` is an irreducible
    #: misprediction floor; 0.96 puts TAGE around the 3-6 direction
    #: mispredictions per kilo-instruction typical of server workloads.
    hot_bias: float = 0.97
    #: Fraction of biased conditionals that are strongly biased; the rest
    #: draw a bias uniformly from [0.3, 0.7] (data-dependent branches that
    #: no predictor can learn).
    hot_bias_fraction: float = 0.94
    #: Mean loop trip count for LOOP conditionals.
    mean_loop_trips: float = 6.0
    #: Scale applied to ``call_fraction`` inside kernel functions, which
    #: call sideways (higher-fid kernel helpers) rather than deeper.
    kernel_call_scale: float = 0.25
    #: Probability a call targets the *next* layer; deeper layers follow
    #: a geometric decay.  Calls never enter the kernel layer directly —
    #: kernel handlers are reached via TRAP blocks only.
    layer_skip_decay: float = 0.6
    #: RNG seed for program construction.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_layers < 3:
            raise ProgramError("need at least 3 layers (roots, app, kernel)")
        if self.n_functions < self.n_layers * 2:
            raise ProgramError("too few functions for the layer count")
        if self.n_roots < 1:
            raise ProgramError("need at least one root function")
        fractions = (self.call_fraction, self.jump_fraction,
                     self.trap_fraction, self.kernel_fraction,
                     self.indirect_fraction, self.loop_fraction,
                     self.alternate_fraction, self.hot_bias_fraction,
                     self.cluster_fraction)
        if any(not 0.0 <= f <= 1.0 for f in fractions):
            raise ProgramError("all fractions must lie in [0, 1]")
        if self.call_fraction + self.jump_fraction + self.trap_fraction >= 1:
            raise ProgramError("block-kind fractions must sum below 1")
        if not 0.5 <= self.hot_bias <= 1.0:
            raise ProgramError("hot_bias must lie in [0.5, 1.0]")


@dataclass
class GeneratedProgram:
    """A program plus the execution metadata the trace generator needs."""

    program: Program
    roots: List[int]
    root_weights: np.ndarray
    kernel_fids: List[int]
    params: GeneratorParams = field(repr=False, default=None)

    @property
    def nfunctions(self) -> int:
        return self.program.nfunctions


def _zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalised Zipf(s) weights over n ranks."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


def _layer_sizes(params: GeneratorParams) -> List[int]:
    """Split functions across layers: roots, app layers, kernel."""
    kernel = max(2, int(round(params.n_functions * params.kernel_fraction)))
    roots = params.n_roots
    remaining = params.n_functions - kernel - roots
    mid_layers = params.n_layers - 2
    if remaining < mid_layers:
        raise ProgramError("not enough functions for the middle layers")
    # Middle layers grow with depth: utility/leaf code outnumbers
    # entry-point code in real stacks.
    raw = np.linspace(1.0, 2.0, mid_layers)
    sizes = np.maximum(1, np.floor(raw / raw.sum() * remaining)).astype(int)
    sizes[-1] += remaining - sizes.sum()
    return [roots] + list(sizes) + [kernel]


def _draw_block_count(rng: np.random.Generator,
                      params: GeneratorParams) -> int:
    mu = np.log(params.median_blocks)
    count = int(round(float(rng.lognormal(mu, params.sigma_blocks))))
    return int(np.clip(count, 2, 64))


def _draw_ninstr(rng: np.random.Generator, params: GeneratorParams) -> int:
    # Geometric-ish block length with the requested mean, clipped so the
    # 5-bit BTB size field can encode it.
    ninstr = 2 + rng.poisson(max(0.1, params.mean_block_instrs - 2))
    return int(np.clip(ninstr, 2, 15))


def _pick_cond(rng: np.random.Generator, params: GeneratorParams,
               idx: int, nblocks: int,
               built: List[BasicBlock]) -> BasicBlock:
    """Build a conditional block at position *idx* of *nblocks*.

    Loop back-edges never span a call or trap block: a loop body that
    re-descends a call subtree on every iteration would concentrate
    dynamic execution into a handful of leaf functions, which is neither
    realistic nor compatible with the paper's wide instruction working
    sets (loop bodies in server code are small; the deep call chains
    happen per-request, not per-iteration).
    """
    ninstr = _draw_ninstr(rng, params)
    roll = rng.random()
    if roll < params.loop_fraction and idx > 0:
        # Largest backward span ending at this block that crosses neither
        # a call/trap (see above) nor another loop branch — nested
        # same-function loops would multiply trip counts (6^k dynamic
        # iterations for k nested levels) and trap the whole trace window
        # inside one function.
        span = 0
        while span < 4 and idx - 1 - span >= 0:
            previous = built[idx - 1 - span]
            if previous.kind in (BranchKind.CALL, BranchKind.TRAP):
                break
            if (previous.kind == BranchKind.COND
                    and previous.behavior == CondBehavior.LOOP):
                break
            span += 1
        if span > 0:
            target = idx - 1 - int(rng.integers(0, span))
            trips = max(2.0, rng.exponential(params.mean_loop_trips))
            return BasicBlock(ninstr=ninstr, kind=BranchKind.COND,
                              taken_succ=target,
                              behavior=CondBehavior.LOOP,
                              behavior_param=float(trips))
    if roll < params.loop_fraction + params.alternate_fraction:
        target = min(nblocks - 1, idx + 1 + int(rng.integers(0, 3)))
        return BasicBlock(ninstr=ninstr, kind=BranchKind.COND,
                          taken_succ=target,
                          behavior=CondBehavior.ALTERNATE,
                          behavior_param=0.5)
    # Forward short-offset biased branch (if/else, error checks).
    target = min(nblocks - 1, idx + 1 + int(rng.integers(0, 4)))
    if rng.random() < params.hot_bias_fraction:
        bias = params.hot_bias if rng.random() < 0.5 else 1 - params.hot_bias
    else:
        bias = float(rng.uniform(0.3, 0.7))
    return BasicBlock(ninstr=ninstr, kind=BranchKind.COND,
                      taken_succ=target, behavior=CondBehavior.BIASED,
                      behavior_param=bias)


def _pick_callees(rng: np.random.Generator, params: GeneratorParams,
                  target_pool: Sequence[int], cluster_base: int,
                  indirect: bool) -> Tuple[int, ...]:
    """Choose callee fid(s) from a deeper-layer pool with clustering."""
    pool_size = len(target_pool)
    cluster = max(1, int(pool_size * params.cluster_fraction))
    weights = _zipf_weights(cluster, params.zipf_callee)
    count = params.indirect_fanout if indirect else 1
    picks = rng.choice(cluster, size=count, p=weights)
    fids = tuple(
        int(target_pool[(cluster_base + int(p)) % pool_size]) for p in picks
    )
    # Deduplicate while preserving order; an indirect site may legitimately
    # collapse to fewer distinct targets.
    seen: List[int] = []
    for fid in fids:
        if fid not in seen:
            seen.append(fid)
    return tuple(seen)


def _pick_call_pool(rng: np.random.Generator, params: GeneratorParams,
                    layer: int, layer_pools: List[List[int]],
                    fid: int, is_kernel: bool) -> List[int]:
    """Candidate-callee pool for one call site.

    Application calls target the next layer with probability
    ``layer_skip_decay``, skipping deeper with geometric decay, and never
    enter the kernel layer directly.  Kernel calls target higher-fid
    kernel helpers (acyclic sideways calls).
    """
    if is_kernel:
        return [other for other in layer_pools[-1] if other > fid]
    last_app_layer = len(layer_pools) - 2
    if layer >= last_app_layer:
        return []
    skip = 0
    while (rng.random() > params.layer_skip_decay
           and layer + 1 + skip < last_app_layer):
        skip += 1
    return layer_pools[layer + 1 + skip]


def _build_function(rng: np.random.Generator, params: GeneratorParams,
                    fid: int, layer: int, layer_pools: List[List[int]],
                    is_kernel: bool) -> Function:
    nblocks = _draw_block_count(rng, params)
    blocks: List[BasicBlock] = []
    n_layers = len(layer_pools)
    call_fraction = params.call_fraction
    if is_kernel:
        call_fraction *= params.kernel_call_scale
    kind_roll_calls = call_fraction
    kind_roll_jumps = kind_roll_calls + params.jump_fraction
    kind_roll_traps = kind_roll_jumps + params.trap_fraction

    for idx in range(nblocks - 1):
        roll = rng.random()
        ninstr = _draw_ninstr(rng, params)
        can_trap = layer < n_layers - 1 and bool(layer_pools[-1])
        if roll < kind_roll_calls:
            pool = _pick_call_pool(rng, params, layer, layer_pools, fid,
                                   is_kernel)
            if pool:
                cluster_base = int(rng.integers(0, len(pool)))
                callees = _pick_callees(
                    rng, params, pool, cluster_base,
                    indirect=rng.random() < params.indirect_fraction,
                )
                blocks.append(BasicBlock(ninstr=ninstr,
                                         kind=BranchKind.CALL,
                                         callees=callees))
                continue
            blocks.append(_pick_cond(rng, params, idx, nblocks, blocks))
        elif roll < kind_roll_jumps:
            target = min(nblocks - 1, idx + 1 + int(rng.integers(0, 6)))
            blocks.append(BasicBlock(ninstr=ninstr, kind=BranchKind.JUMP,
                                     taken_succ=target))
        elif roll < kind_roll_traps and can_trap and not is_kernel:
            kernel_pool = layer_pools[-1]
            cluster_base = int(rng.integers(0, len(kernel_pool)))
            callees = _pick_callees(rng, params, kernel_pool, cluster_base,
                                    indirect=False)
            blocks.append(BasicBlock(ninstr=ninstr, kind=BranchKind.TRAP,
                                     callees=callees))
        else:
            blocks.append(_pick_cond(rng, params, idx, nblocks, blocks))
    terminator = BranchKind.TRAP_RET if is_kernel else BranchKind.RET
    blocks.append(BasicBlock(ninstr=_draw_ninstr(rng, params),
                             kind=terminator))
    return Function(fid=fid, blocks=blocks, is_kernel=is_kernel)


def generate_program(params: GeneratorParams) -> GeneratedProgram:
    """Generate a layered synthetic server program.

    Deterministic for a given ``params`` (including its seed).
    """
    rng = np.random.default_rng(params.seed)
    sizes = _layer_sizes(params)

    # Assign dense fids layer by layer so the Program invariant holds.
    layer_pools: List[List[int]] = []
    next_fid = 0
    for size in sizes:
        layer_pools.append(list(range(next_fid, next_fid + size)))
        next_fid += size

    functions: List[Function] = []
    for layer, pool in enumerate(layer_pools):
        is_kernel = layer == len(layer_pools) - 1
        for fid in pool:
            functions.append(
                _build_function(rng, params, fid, layer, layer_pools,
                                is_kernel)
            )

    # Shuffle the *layout order* (not the fids) so that functions that call
    # each other are not artificially adjacent in the address space.
    order = rng.permutation(len(functions))
    laid_out = [functions[i] for i in order]
    relabel = {f.fid: i for i, f in enumerate(laid_out)}
    rebuilt: List[Function] = []
    for new_fid, function in enumerate(laid_out):
        new_blocks: List[BasicBlock] = []
        for block in function.blocks:
            if block.callees:
                new_callees = tuple(relabel[c] for c in block.callees)
                new_blocks.append(BasicBlock(
                    ninstr=block.ninstr, kind=block.kind,
                    taken_succ=block.taken_succ, callees=new_callees,
                    behavior=block.behavior,
                    behavior_param=block.behavior_param,
                ))
            else:
                new_blocks.append(block)
        rebuilt.append(Function(fid=new_fid, blocks=new_blocks,
                                is_kernel=function.is_kernel))

    program = Program(rebuilt, seed=params.seed)
    roots = [relabel[f] for f in layer_pools[0]]
    kernel_fids = [relabel[f] for f in layer_pools[-1]]
    return GeneratedProgram(
        program=program,
        roots=roots,
        root_weights=_zipf_weights(len(roots), params.zipf_root),
        kernel_fids=kernel_fids,
        params=params,
    )
