"""Benchmark: workload colocation (paper Section 2.1 discussion).

Quantifies the paper's argument for metadata-free prefetching: as more
workloads share the LLC, Confluence's virtualised history metadata eats
a growing slice of a shrinking cache, while Shotgun — whose metadata
lives entirely in the BTB budget — keeps its margin.
"""

from repro.experiments import colocation


def test_colocation_study(run_experiment):
    result = run_experiment(colocation.run)
    conf = dict(zip((label for label, _ in result.rows),
                    result.column("Confluence")))
    shot = dict(zip((label for label, _ in result.rows),
                    result.column("Shotgun")))
    # Shape: Confluence degrades monotonically with colocation degree.
    assert conf["degree 1"] >= conf["degree 2"] >= conf["degree 4"]
    # Shotgun's margin over Confluence grows with the degree.
    margin_1 = shot["degree 1"] - conf["degree 1"]
    margin_4 = shot["degree 4"] - conf["degree 4"]
    assert margin_4 > margin_1
