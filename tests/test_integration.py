"""Cross-module integration tests on the real workload profiles.

These use reduced traces of the actual calibrated workloads and check
the paper's core qualitative claims end to end.
"""

import pytest

from repro.core.metrics import frontend_stall_coverage, speedup
from repro.core.sweep import run_schemes
from repro.workloads.analysis import btb_mpki, region_access_distribution
from repro.workloads.profiles import build_trace

#: Reduced trace length for integration tests: long enough for stable
#: relationships, short enough to keep the suite fast.
N_BLOCKS = 12_000


@pytest.fixture(scope="module")
def oltp_results():
    return run_schemes(
        "db2", ("baseline", "ideal", "boomerang", "confluence", "shotgun"),
        n_blocks=N_BLOCKS,
    )


class TestPaperHeadlines:
    def test_shotgun_beats_boomerang_on_oltp(self, oltp_results):
        """The paper's headline: Shotgun outperforms the state-of-the-art
        BTB-directed prefetcher on large-footprint workloads."""
        base = oltp_results["baseline"]
        assert speedup(base, oltp_results["shotgun"]) \
            > speedup(base, oltp_results["boomerang"])

    def test_shotgun_covers_more_stalls_than_boomerang(self, oltp_results):
        base = oltp_results["baseline"]
        assert frontend_stall_coverage(base, oltp_results["shotgun"]) \
            > frontend_stall_coverage(base, oltp_results["boomerang"])

    def test_everything_below_ideal(self, oltp_results):
        ideal = oltp_results["ideal"].cycles
        for name in ("baseline", "boomerang", "confluence", "shotgun"):
            assert oltp_results[name].cycles >= ideal

    def test_shotgun_reduces_l1i_stalls_most(self, oltp_results):
        """Bulk footprint prefetching slashes L1-I stall cycles below
        Boomerang's serial per-block prefetching."""
        assert oltp_results["shotgun"].stats.stall_l1i \
            < oltp_results["boomerang"].stats.stall_l1i


class TestWorkloadCharacterisation:
    def test_mpki_ordering_matches_table1(self):
        oracle = btb_mpki(build_trace("oracle", N_BLOCKS))
        nutch = btb_mpki(build_trace("nutch", N_BLOCKS))
        zeus = btb_mpki(build_trace("zeus", N_BLOCKS))
        assert oracle > zeus > nutch

    def test_spatial_locality_universal(self):
        for workload in ("nutch", "oracle"):
            cdf = region_access_distribution(
                build_trace(workload, N_BLOCKS)
            )
            assert cdf[10] > 0.85


class TestStorageParity:
    def test_shotgun_fits_boomerang_budget(self, oltp_results):
        """Section 5.2: Shotgun's three BTBs fit in (approximately) the
        storage of Boomerang's 2K-entry BTB."""
        from repro.config import MicroarchParams
        from repro.prefetch.factory import build_scheme
        from repro.workloads.profiles import build_program

        params = MicroarchParams()
        generated = build_program("db2")
        shotgun = build_scheme("shotgun", params, generated)
        boomerang = build_scheme("boomerang", params, generated)
        ratio = shotgun.storage_bits() / boomerang.storage_bits()
        assert ratio < 1.03
