# Vendored verbatim from the seed revision (ea25f9d) with imports
# rewritten to the _legacy siblings, so the perf smoke benchmark
# compares the new engine against the true pre-PR engine.
"""Spatial footprints: encoding, decoding and retire-time recording.

Section 4.2.2 of the paper: a spatial footprint summarises which cache
blocks a code region touched, as a short bit vector of line offsets
relative to the region's entry (target) line.  The paper's 8-bit format
devotes 6 bits to blocks *after* the target and 2 to blocks *before* it.

The codec also implements the ablation formats of Section 6.3:

* ``none`` — no region prefetching.
* ``bitvector`` — the paper's format, 8 or 32 bits.
* ``entire_region`` — record only entry/exit offsets, prefetch everything
  between them (over-prefetches untouched blocks).
* ``fixed_blocks`` — metadata-free: always prefetch N consecutive blocks
  from the target ("5-Blocks" design point).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError

#: Widest offset magnitude the entire-region packing can express.
_REGION_CLAMP = 127


def _split_bits(bits: int) -> Tuple[int, int]:
    """Bits after/before the target line for a bit-vector width.

    The paper's 8-bit vector uses 6 after + 2 before; wider vectors keep
    the same 3:1 proportion.
    """
    after = bits * 3 // 4
    return after, bits - after


class FootprintCodec:
    """Encode/decode spatial footprints in one of the four formats."""

    MODES = ("none", "bitvector", "entire_region", "fixed_blocks")

    def __init__(self, mode: str = "bitvector", bits: int = 8,
                 fixed_blocks: int = 5) -> None:
        if mode not in self.MODES:
            raise ConfigError(f"unknown footprint mode {mode!r}")
        if mode == "bitvector" and bits < 2:
            raise ConfigError("bit vector needs at least 2 bits")
        if mode == "fixed_blocks" and fixed_blocks < 1:
            raise ConfigError("fixed_blocks needs at least 1 block")
        self.mode = mode
        self.bits = bits
        self.fixed_blocks = fixed_blocks
        self.after_bits, self.before_bits = _split_bits(bits)

    # -- encoding ------------------------------------------------------

    def encode(self, offsets: Iterable[int]) -> int:
        """Encode accessed line offsets (relative to the target line).

        Offset 0 (the target line itself) is implicit and never encoded;
        offsets outside the representable range are dropped, exactly as a
        narrow hardware vector would lose them.
        """
        if self.mode in ("none", "fixed_blocks"):
            return 0
        if self.mode == "entire_region":
            lo = hi = 0
            for offset in offsets:
                clamped = max(-_REGION_CLAMP, min(_REGION_CLAMP, offset))
                lo = min(lo, clamped)
                hi = max(hi, clamped)
            return ((hi & 0xFF) << 8) | (lo & 0xFF)
        mask = 0
        for offset in offsets:
            bit = self._bit_for_offset(offset)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def _bit_for_offset(self, offset: int) -> Optional[int]:
        if 1 <= offset <= self.after_bits:
            return offset - 1
        if -self.before_bits <= offset <= -1:
            return self.after_bits + (-offset) - 1
        return None

    # -- decoding ------------------------------------------------------

    def prefetch_offsets(self, footprint: int) -> List[int]:
        """Line offsets (relative to the target line) to prefetch.

        Offset 0 is always included: the target block itself is prefetched
        on every U-BTB/RIB hit regardless of format.
        """
        if self.mode == "none":
            return [0]
        if self.mode == "fixed_blocks":
            return list(range(0, self.fixed_blocks))
        if self.mode == "entire_region":
            lo = _sign_extend(footprint & 0xFF)
            hi = _sign_extend((footprint >> 8) & 0xFF)
            return list(range(lo, hi + 1)) or [0]
        offsets = [0]
        for bit in range(self.after_bits):
            if footprint & (1 << bit):
                offsets.append(bit + 1)
        for bit in range(self.before_bits):
            if footprint & (1 << (self.after_bits + bit)):
                offsets.append(-(bit + 1))
        return offsets

    def storage_bits_per_footprint(self) -> int:
        """Metadata bits each footprint costs in a U-BTB entry."""
        if self.mode == "bitvector":
            return self.bits
        if self.mode == "entire_region":
            return 16  # packed entry/exit offsets
        return 0


def _sign_extend(byte: int) -> int:
    return byte - 256 if byte >= 128 else byte


class RegionRecorder:
    """Retire-stream spatial-footprint recorder (Section 4.2.2).

    A recording opens when an unconditional branch retires and closes at
    the next unconditional branch.  While open, the recorder accumulates
    the line offsets (relative to the region's entry line) of every block
    the region touched; on close it hands the encoded footprint to the
    ``store`` callback registered at open time.
    """

    def __init__(self, codec: FootprintCodec) -> None:
        self.codec = codec
        self._entry_line: Optional[int] = None
        self._offsets: Dict[int, None] = {}
        self._store: Optional[Callable[[int], None]] = None
        self.regions_recorded = 0

    def open(self, entry_line: int, store: Callable[[int], None]) -> None:
        """Close any active recording, then start a new region."""
        self.close()
        self._entry_line = entry_line
        self._offsets = {}
        self._store = store

    def access(self, line: int) -> None:
        """Record an access to *line* inside the active region."""
        if self._entry_line is None:
            return
        offset = line - self._entry_line
        if offset != 0:
            self._offsets[offset] = None

    def close(self) -> None:
        """Finish the active region and store its encoded footprint."""
        if self._entry_line is None:
            return
        if self._store is not None:
            self._store(self.codec.encode(self._offsets.keys()))
            self.regions_recorded += 1
        self._entry_line = None
        self._offsets = {}
        self._store = None
