"""Figure 8: Shotgun stall-cycle coverage vs spatial-footprint format."""

from __future__ import annotations

from repro.core.metrics import arithmetic_mean, frontend_stall_coverage
from repro.experiments.common import (
    DISPLAY_NAMES,
    FOOTPRINT_LABELS,
    FOOTPRINT_VARIANTS,
    WORKLOAD_NAMES,
    figure_grid,
    footprint_variant_config,
)
from repro.experiments.reporting import ExperimentResult


def run(n_blocks: int = 60_000) -> ExperimentResult:
    """Coverage of each Section 6.3 spatial-footprint mechanism."""
    result = ExperimentResult(
        experiment_id="figure8",
        title=("Figure 8: Shotgun stall-cycle coverage by spatial-region "
               "prefetching mechanism"),
        columns=[FOOTPRINT_LABELS[v] for v in FOOTPRINT_VARIANTS],
        value_format="{:.2f}",
        notes=("Shape target: 8-bit vector clearly above 'No bit vector'; "
               "32-bit only marginally above 8-bit."),
    )
    per_variant = {v: [] for v in FOOTPRINT_VARIANTS}
    grid = figure_grid(
        ("baseline",) + FOOTPRINT_VARIANTS, n_blocks,
        configs={v: footprint_variant_config(v) for v in FOOTPRINT_VARIANTS},
    )
    for workload in WORKLOAD_NAMES:
        base = grid[workload]["baseline"]
        row = []
        for variant in FOOTPRINT_VARIANTS:
            res = grid[workload][variant]
            value = frontend_stall_coverage(base, res)
            row.append(value)
            per_variant[variant].append(value)
        result.add_row(DISPLAY_NAMES[workload], row)
    result.set_summary(
        "Avg",
        [arithmetic_mean(per_variant[v]) for v in FOOTPRINT_VARIANTS],
    )
    return result
