"""Unit tests for metrics and result containers."""

import pytest

from repro.core.metrics import (
    EngineStats,
    SimulationResult,
    arithmetic_mean,
    frontend_stall_coverage,
    geometric_mean,
    speedup,
)
from repro.errors import SimulationError


def _result(cycles, instructions=1000, **stall_kwargs):
    stats = EngineStats(cycles=cycles, instructions=instructions,
                        **stall_kwargs)
    return SimulationResult(scheme="test", stats=stats)


class TestEngineStats:
    def test_snapshot_and_delta(self):
        stats = EngineStats(cycles=100.0, instructions=50, stall_l1i=10.0)
        snap = stats.snapshot()
        stats.cycles = 250.0
        stats.instructions = 120
        stats.stall_l1i = 35.0
        delta = stats.delta_from(snap)
        assert delta.cycles == 150.0
        assert delta.instructions == 70
        assert delta.stall_l1i == 25.0
        # Snapshot itself is unchanged.
        assert snap.cycles == 100.0


class TestSimulationResult:
    def test_ipc(self):
        assert _result(500.0).ipc == pytest.approx(2.0)

    def test_frontend_stall_definition(self):
        result = _result(1000.0, stall_l1i=10.0, stall_ftq=5.0,
                         stall_btb_flush=3.0, stall_dir_flush=100.0)
        # Direction flushes are NOT front-end-prefetchable stalls.
        assert result.frontend_stall_cycles == pytest.approx(18.0)

    def test_prefetch_accuracy(self):
        result = _result(100.0, prefetch_issued=10, prefetch_used=7)
        assert result.prefetch_accuracy == pytest.approx(0.7)
        assert _result(100.0).prefetch_accuracy == 0.0

    def test_l1d_fill_latency(self):
        result = _result(100.0, l1d_misses=4, l1d_fill_cycles=200.0)
        assert result.l1d_fill_latency == pytest.approx(50.0)

    def test_mpki_properties(self):
        result = _result(100.0, instructions=2000, btb_misses=10,
                         l1i_demand_misses=4)
        assert result.btb_mpki == pytest.approx(5.0)
        assert result.l1i_mpki == pytest.approx(2.0)


class TestSpeedupAndCoverage:
    def test_speedup(self):
        assert speedup(_result(200.0), _result(100.0)) == pytest.approx(2.0)

    def test_speedup_rejects_mismatched_windows(self):
        with pytest.raises(SimulationError):
            speedup(_result(200.0, instructions=10),
                    _result(100.0, instructions=20))

    def test_coverage(self):
        base = _result(200.0, stall_l1i=100.0)
        scheme = _result(150.0, stall_l1i=25.0)
        assert frontend_stall_coverage(base, scheme) == pytest.approx(0.75)

    def test_coverage_clamps_at_zero(self):
        base = _result(200.0, stall_l1i=10.0)
        worse = _result(300.0, stall_l1i=50.0)
        assert frontend_stall_coverage(base, worse) == 0.0

    def test_coverage_rejects_stall_free_baseline(self):
        with pytest.raises(SimulationError):
            frontend_stall_coverage(_result(100.0), _result(100.0))


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(SimulationError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(SimulationError):
            geometric_mean([])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(SimulationError):
            arithmetic_mean([])
