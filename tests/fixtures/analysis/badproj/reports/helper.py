"""Excluded subtree that monkey-patches engine state (RPR002)."""

import badproj.engine as engine


def pretty(value):
    return f"{value:.3f}"


def boost():
    engine.TUNING = 2.0  # excluded code mutating fingerprinted state
