"""Microarchitectural structures used by the front-end engine.

Everything the paper's Figure 5a names is here: the conventional
basic-block BTB, Shotgun's U-BTB/C-BTB/RIB, the return address stack (with
Shotgun's call-block extension), the fetch target queue, the predecoder,
the branch direction predictor (TAGE) and the cache/NoC substrate.
"""

from repro.uarch.cache import PrefetchBuffer, SetAssocCache
from repro.uarch.btb import BTBEntry, ConventionalBTB, BTBPrefetchBuffer
from repro.uarch.shotgun_btb import CBTB, RIB, UBTB, CBTBEntry, RIBEntry, \
    UBTBEntry
from repro.uarch.ras import RASEntry, ReturnAddressStack
from repro.uarch.ftq import FetchTargetQueue, FTQEntry
from repro.uarch.predecoder import Predecoder
from repro.uarch.tage import BimodalPredictor, TagePredictor
from repro.uarch.interconnect import NocModel

__all__ = [
    "PrefetchBuffer",
    "SetAssocCache",
    "BTBEntry",
    "ConventionalBTB",
    "BTBPrefetchBuffer",
    "CBTB",
    "RIB",
    "UBTB",
    "CBTBEntry",
    "RIBEntry",
    "UBTBEntry",
    "RASEntry",
    "ReturnAddressStack",
    "FetchTargetQueue",
    "FTQEntry",
    "Predecoder",
    "BimodalPredictor",
    "TagePredictor",
    "NocModel",
]
