"""Fetch-directed instruction prefetching (Reinman, Calder & Austin [15]).

FDIP decouples the branch prediction unit from fetch with an FTQ and
prefetches the L1-I blocks of every predicted fetch address.  Its BTB-miss
policy is to *speculate straight-line* (Section 3.2): when the BTB does
not know about a branch, the BPU simply keeps enqueuing sequential code.
That is harmless for not-taken conditionals but sends the prefetcher down
the wrong path whenever the missing branch was a taken (especially an
unconditional) control transfer, and the front-end only recovers at
execute time.  FDIP does not prefill the BTB; entries are learned at
execute (demand fill).
"""

from __future__ import annotations

from typing import Optional

from repro.isa import BranchKind
from repro.prefetch.base import LookupHit, MissPolicy, Scheme
from repro.uarch.btb import ConventionalBTB


class FdipScheme(Scheme):
    """Original FDIP: run-ahead prefetching, speculate through BTB misses."""

    name = "fdip"
    runahead = True
    miss_policy = MissPolicy.SPECULATE_FALLTHROUGH

    def __init__(self, btb_entries: int = 2048, btb_assoc: int = 4) -> None:
        self.btb = ConventionalBTB(entries=btb_entries, assoc=btb_assoc)

    def lookup(self, pc: int, now: float) -> Optional[LookupHit]:
        entry = self.btb.lookup(pc)
        if entry is None:
            return None
        return LookupHit(ninstr=entry.ninstr, kind=entry.kind,
                         target=entry.target, source="btb")

    def demand_fill(self, pc: int, ninstr: int, kind: BranchKind,
                    target: int, now: float) -> None:
        self.btb.insert_branch(pc, ninstr, kind, target)

    def storage_bits(self) -> int:
        return self.btb.storage_bits()
