"""Unified telemetry for the reproduction (DESIGN.md Section 13).

Observability is a *read-only* layer over the engine and its execution
stack: a process-wide metrics registry (:mod:`repro.obs.metrics`),
span-based tracing threaded through the sweep scheduler and every
execution backend (:mod:`repro.obs.tracing`), a cheap phase-level
sampling profiler for the engine hot path (:mod:`repro.obs.profile`),
and the export sinks — JSONL event stream, Prometheus-style text
exposition, and the per-invocation run manifest
(:mod:`repro.obs.export`).

Nothing in this package may ever change simulation output: the subtree
is fingerprint-excluded (``diskcache._FINGERPRINT_EXCLUDE``), tracing
and profiling are off by default, and every instrument is fed from
engine events — never the other way around.  ``repro.obs.export`` is
deliberately *not* imported here: it reaches back into
:mod:`repro.core.diskcache` (lazily) for fingerprint/version stamps,
and the package init must stay import-cycle-free because fingerprinted
modules import :mod:`repro.obs.metrics` at module load.
"""

from __future__ import annotations

from repro.obs import metrics, profile, tracing

__all__ = ["metrics", "tracing", "profile"]
