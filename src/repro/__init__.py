"""Reproduction of *Blasting Through The Front-End Bottleneck With Shotgun*.

Kumar, Grot and Nagarajan, ASPLOS 2018.

The package is organised as a set of substrates plus the paper's
contribution on top:

``repro.isa``
    Branch kinds, basic-block records and address arithmetic.
``repro.cfg``
    Control-flow-graph program model and the synthetic server-workload
    program generator.
``repro.workloads``
    The six calibrated workload profiles (Nutch, Streaming, Apache, Zeus,
    Oracle, DB2), retire-order trace generation and trace characterisation.
``repro.uarch``
    Microarchitectural structures: caches, conventional BTB, Shotgun's
    U-BTB/C-BTB/RIB, TAGE, RAS, FTQ, predecoder and the NoC/LLC latency
    model.
``repro.prefetch``
    Front-end prefetch schemes: no-prefetch, FDIP, Boomerang, Confluence,
    Shotgun (with all spatial-footprint variants) and the ideal front-end.
``repro.core``
    The decoupled front-end timing engine, metrics and sweep helpers.
``repro.experiments``
    One runner per paper table/figure, regenerating the published results.
"""

from repro.version import __version__
from repro.config import MicroarchParams, SchemeConfig, shotgun_budget_split
from repro.workloads import (
    WORKLOAD_NAMES,
    WorkloadProfile,
    generate_trace,
    get_profile,
)
from repro.core import FrontEnd, SimulationResult, simulate
from repro.prefetch import SCHEME_FACTORIES, build_scheme

__all__ = [
    "__version__",
    "MicroarchParams",
    "SchemeConfig",
    "shotgun_budget_split",
    "WORKLOAD_NAMES",
    "WorkloadProfile",
    "generate_trace",
    "get_profile",
    "FrontEnd",
    "SimulationResult",
    "simulate",
    "SCHEME_FACTORIES",
    "build_scheme",
]
