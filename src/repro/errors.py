"""Exception hierarchy for the repro package.

All errors raised intentionally by this package derive from
:class:`ReproError`, so callers can catch package failures without also
swallowing programming errors such as :class:`TypeError`.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid microarchitectural or scheme configuration was supplied."""


class ProgramError(ReproError):
    """A synthetic program or CFG failed validation."""


class TraceError(ReproError):
    """A trace is malformed or inconsistent with its program image."""


class SimulationError(ReproError):
    """The front-end engine reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment runner was misconfigured or produced no data."""


class AnalysisError(ReproError):
    """The static-analysis subsystem was misconfigured or cannot run."""
