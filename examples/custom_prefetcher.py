"""Extend the framework with a custom prefetch scheme.

Implements a *next-N-line* instruction prefetcher on top of the public
``Scheme`` interface — the textbook sequential prefetcher server vendors
shipped before BTB-directed designs — and races it against Boomerang and
Shotgun on a web-serving workload.

This demonstrates the extension points a downstream user has:

* ``lookup`` / ``demand_fill`` — the BTB the front-end consults;
* ``on_fetch_line`` — fetch-triggered prefetch generation;
* ``miss_policy`` — what the BPU does on a BTB miss.

Run with::

    python examples/custom_prefetcher.py
"""

from typing import List, Optional, Tuple

from repro import MicroarchParams, simulate
from repro.core.metrics import frontend_stall_coverage, speedup
from repro.isa import BranchKind
from repro.prefetch import build_scheme
from repro.prefetch.base import LookupHit, MissPolicy, Scheme
from repro.uarch.btb import ConventionalBTB
from repro.workloads.profiles import build_program, build_trace, get_profile


class NextLinePrefetcher(Scheme):
    """Conventional BTB + fetch-triggered next-N-line prefetching.

    On every L1-I fetch, prefetch the next ``depth`` sequential lines.
    Good at straight-line code, blind to taken branches — exactly the
    weakness BTB-directed prefetching was invented to fix.
    """

    name = "next-line"
    runahead = False
    miss_policy = MissPolicy.FLUSH_AT_EXECUTE

    def __init__(self, depth: int = 3, btb_entries: int = 2048) -> None:
        self.depth = depth
        self.btb = ConventionalBTB(entries=btb_entries, assoc=4)

    def lookup(self, pc: int, now: float) -> Optional[LookupHit]:
        entry = self.btb.lookup(pc)
        if entry is None:
            return None
        return LookupHit(ninstr=entry.ninstr, kind=entry.kind,
                         target=entry.target, source="btb")

    def demand_fill(self, pc: int, ninstr: int, kind: BranchKind,
                    target: int, now: float) -> None:
        self.btb.insert_branch(pc, ninstr, kind, target)

    def on_fetch_line(self, line: int, l1i_hit: bool,
                      now: float) -> List[Tuple[int, float]]:
        return [(line + i, now) for i in range(1, self.depth + 1)]

    def storage_bits(self) -> int:
        return self.btb.storage_bits()


def main() -> None:
    workload = "apache"
    profile = get_profile(workload)
    generated = build_program(workload)
    trace = build_trace(workload, n_blocks=25_000)
    params = MicroarchParams()

    contenders = {
        "baseline": build_scheme("baseline", params, generated),
        "next-line": NextLinePrefetcher(depth=3),
        "boomerang": build_scheme("boomerang", params, generated),
        "shotgun": build_scheme("shotgun", params, generated),
    }

    results = {
        name: simulate(trace, scheme, params=params,
                       l1d_misses_per_kinstr=profile.l1d_misses_per_kinstr)
        for name, scheme in contenders.items()
    }
    base = results["baseline"]

    print(f"Custom scheme shoot-out on {workload}:\n")
    print(f"{'scheme':12s} {'speedup':>8s} {'coverage':>9s} "
          f"{'accuracy':>9s}")
    for name, result in results.items():
        coverage = (frontend_stall_coverage(base, result)
                    if name != "baseline" else 0.0)
        print(f"{name:12s} {speedup(base, result):8.3f} {coverage:9.0%} "
              f"{result.prefetch_accuracy:9.0%}")

    print("\nNext-line prefetching helps straight-line fetch but cannot")
    print("follow calls and returns; BTB-directed schemes can.")


if __name__ == "__main__":
    main()
