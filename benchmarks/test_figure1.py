"""Benchmark: regenerate Figure 1 (prefetchers vs ideal front-end)."""

from repro.experiments import figure1


def test_figure1_competitive_analysis(run_experiment):
    result = run_experiment(figure1.run)
    gmean = dict(zip(result.columns, result.summary[1]))
    # Shape: a sizeable gap between both prefetchers and Ideal remains.
    assert gmean["Ideal"] > gmean["Confluence"]
    assert gmean["Ideal"] > gmean["Boomerang"]
    # Confluence ahead of Boomerang on the OLTP workloads.
    assert result.value("Oracle", "Confluence") \
        > result.value("Oracle", "Boomerang")
    assert result.value("DB2", "Confluence") \
        > result.value("DB2", "Boomerang")
