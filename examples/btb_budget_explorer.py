"""Explore the BTB storage budget trade-off (the paper's Figure 13).

Sweeps the conventional-BTB budget from 512 to 8K entries, sizing
Shotgun's three structures to the equivalent storage at every point
(Section 6.5), and reports where Shotgun at budget B overtakes Boomerang
at 2B — the paper's "half the storage for the same performance" claim.

The sweep is declared as a :class:`~repro.experiments.spec.GridSpec`
(rows: budgets, columns: schemes, shared no-prefetch baseline), so all
cells fan across cores and land in the persistent result cache.

Run with::

    python examples/btb_budget_explorer.py [workload]
"""

import sys

from repro.experiments.common import budget_configs
from repro.experiments.reporting import format_table
from repro.experiments.spec import Cell, GridSpec, RunSpec, run_grid_spec

BUDGETS = (512, 1024, 2048, 4096, 8192)
SCHEMES = ("boomerang", "shotgun")


def budget_spec(workload: str) -> GridSpec:
    """The budget sweep as a declarative grid for *workload*."""
    base = RunSpec(workload=workload, scheme="baseline")
    cells = tuple(
        Cell(row=f"{budget} entries", col=scheme,
             spec=RunSpec(workload=workload, scheme=scheme,
                          config=budget_configs(budget)[scheme]),
             baseline=base)
        for budget in BUDGETS for scheme in SCHEMES
    )
    return GridSpec(
        experiment_id="btb_budget",
        title=f"BTB budget sweep on {workload} (speedup over no-prefetch)",
        columns=SCHEMES,
        cells=cells,
        metric="speedup",
        chart_baseline=1.0,
    )


def main(workload: str = "db2", n_blocks: int = 25_000) -> None:
    result = run_grid_spec(budget_spec(workload), n_blocks=n_blocks)

    rows = []
    for budget in BUDGETS:
        sizes = budget_configs(budget)["shotgun"].shotgun_sizes
        rows.append([
            f"{budget} entries",
            f"{budget * 93 / 8 / 1024:.1f} KB",
            f"{sizes.ubtb_entries}/{sizes.cbtb_entries}"
            f"/{sizes.rib_entries}",
            f"{result.value(f'{budget} entries', 'boomerang'):.3f}",
            f"{result.value(f'{budget} entries', 'shotgun'):.3f}",
        ])

    print(f"BTB budget sweep on {workload} "
          f"(Shotgun split U-BTB/C-BTB/RIB at equal storage):\n")
    print(format_table(
        ["budget", "storage", "shotgun split", "boomerang", "shotgun"],
        rows,
    ))

    # The paper's claim: Shotgun needs about half Boomerang's storage.
    print()
    for budget in BUDGETS[:-1]:
        doubled = budget * 2
        shotgun = result.value(f"{budget} entries", "shotgun")
        boomerang = result.value(f"{doubled} entries", "boomerang")
        if shotgun >= boomerang:
            print(f"Shotgun @ {budget} entries >= "
                  f"Boomerang @ {doubled} entries "
                  f"({shotgun:.3f} vs {boomerang:.3f})")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "db2")
