"""Registry of all experiment runners, keyed by paper table/figure id."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ExperimentError
from repro.experiments import (
    figure1,
    figure3,
    figure4,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    table1,
)
from repro.experiments.reporting import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "figure1": figure1.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "figure11": figure11.run,
    "figure12": figure12.run,
    "figure13": figure13.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Runner for one experiment id (e.g. ``"figure7"``)."""
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def run_all(n_blocks: int = 60_000) -> List[ExperimentResult]:
    """Run every experiment (shared simulations are cached)."""
    return [run(n_blocks=n_blocks) for run in EXPERIMENTS.values()]
