"""Tests for the pluggable search strategies (stubbed evaluation).

Strategies only talk to the evaluation context protocol, so these tests
drive them with a deterministic stub — no engine, no caches — and
assert the search *schedules*: visit order, budget behaviour, fidelity
rungs, seed reproducibility.  End-to-end behaviour over real
simulations is covered by tests/test_explore_cli.py.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ExperimentError
from repro.explore.frontier import EvaluatedPoint, resolve_objectives
from repro.explore.space import Dimension, ParamSpace
from repro.explore.strategies import (
    BudgetExhausted,
    ExhaustiveStrategy,
    HillClimbStrategy,
    RandomStrategy,
    STRATEGIES,
    SuccessiveHalvingStrategy,
    get_strategy,
)

SPACE = ParamSpace(
    name="stub",
    dimensions=(
        Dimension("ftq_size", (8, 16, 32, 64)),
        Dimension("prefetch_degree", (16, 32, 64)),
    ),
    workloads=("nutch",),
)

OBJECTIVES = resolve_objectives(["speedup", "storage_bits"])


class StubContext:
    """Deterministic synthetic landscape: speedup grows with both axes,
    storage too — so bigger configurations score better on the primary
    objective and the global optimum is the (64, 64) corner."""

    def __init__(self, budget=None, n_blocks=9000):
        self.budget = budget
        self.n_blocks = n_blocks
        self.objectives = OBJECTIVES
        self.calls = []

    def evaluate(self, point, n_blocks=None):
        if self.budget is not None and len(self.calls) >= self.budget:
            raise BudgetExhausted()
        blocks = n_blocks if n_blocks is not None else self.n_blocks
        self.calls.append((point, blocks))
        values = dict(point)
        degree = values.get("prefetch_degree", 0)
        speedup = 1.0 + values["ftq_size"] / 100.0 + degree / 1000.0
        bits = values["ftq_size"] * 53 + degree * 558
        return EvaluatedPoint(
            point=point, n_blocks=blocks,
            objectives=(("speedup", speedup),
                        ("storage_bits", float(bits))),
        )


class TestExhaustive:
    def test_visits_every_point_in_order(self):
        ctx = StubContext()
        ExhaustiveStrategy().search(SPACE, ctx, random.Random(0))
        assert [p for p, _ in ctx.calls] == list(SPACE.iter_points())

    def test_budget_stops_the_scan(self):
        ctx = StubContext(budget=5)
        with pytest.raises(BudgetExhausted):
            ExhaustiveStrategy().search(SPACE, ctx, random.Random(0))
        assert len(ctx.calls) == 5
        assert [p for p, _ in ctx.calls] == list(SPACE.iter_points())[:5]


class TestRandom:
    def test_samples_without_replacement_and_covers_space(self):
        ctx = StubContext()
        RandomStrategy().search(SPACE, ctx, random.Random(1))
        points = [p for p, _ in ctx.calls]
        assert len(points) == SPACE.size()
        assert len(set(points)) == SPACE.size()

    def test_same_seed_same_schedule(self):
        first, second = StubContext(budget=6), StubContext(budget=6)
        for ctx in (first, second):
            with pytest.raises(BudgetExhausted):
                RandomStrategy().search(SPACE, ctx, random.Random(42))
        assert first.calls == second.calls

    def test_different_seeds_differ(self):
        schedules = []
        for seed in (0, 1):
            ctx = StubContext()
            RandomStrategy().search(SPACE, ctx, random.Random(seed))
            schedules.append([p for p, _ in ctx.calls])
        assert schedules[0] != schedules[1]


class TestHillClimb:
    def test_first_climb_reaches_the_corner_optimum(self):
        """On a monotone 1-D landscape the first ascent must walk to the
        top value before any restart happens."""
        line = ParamSpace(
            name="line",
            dimensions=(Dimension("ftq_size", (8, 16, 32, 64)),),
            workloads=("nutch",),
        )
        for seed in range(6):
            ctx = StubContext()
            HillClimbStrategy().search(line, ctx, random.Random(seed))
            visited = [dict(p)["ftq_size"] for p, _ in ctx.calls]
            top = visited.index(64)
            # Every evaluation after reaching the top is a (re)start or
            # probe of a smaller value; the climb itself never moved
            # downhill to reach 64 — it was probed monotonically.
            climb = visited[:top + 1]
            assert max(climb) == 64
            assert sorted(set(visited)) == [8, 16, 32, 64]

    def test_terminates_after_visiting_whole_space(self):
        ctx = StubContext()
        HillClimbStrategy().search(SPACE, ctx, random.Random(5))
        points = [p for p, _ in ctx.calls]
        assert len(points) == len(set(points)) == SPACE.size()

    def test_deterministic_given_seed(self):
        runs = []
        for _ in range(2):
            ctx = StubContext(budget=7)
            with pytest.raises(BudgetExhausted):
                HillClimbStrategy().search(SPACE, ctx, random.Random(9))
            runs.append(ctx.calls)
        assert runs[0] == runs[1]


class TestSuccessiveHalving:
    def test_blocks_schedule_and_survivor_counts(self):
        ctx = StubContext(n_blocks=9000)
        SuccessiveHalvingStrategy(reduction=3, rungs=3).search(
            SPACE, ctx, random.Random(7))
        blocks = [b for _, b in ctx.calls]
        # Cohort of 9 at 1/9 fidelity, 3 survivors at 1/3, 1 at full.
        assert blocks == [1000] * 9 + [3000] * 3 + [9000]

    def test_survivors_are_the_top_scorers(self):
        ctx = StubContext(n_blocks=9000)
        SuccessiveHalvingStrategy(reduction=3, rungs=3).search(
            SPACE, ctx, random.Random(7))
        rung0 = [p for p, b in ctx.calls if b == 1000]
        rung1 = [p for p, b in ctx.calls if b == 3000]
        score = lambda p: 1.0 + dict(p)["ftq_size"] / 100.0 \
            + dict(p)["prefetch_degree"] / 1000.0
        expected = sorted(rung0, key=score, reverse=True)[:3]
        assert sorted(map(score, rung1)) == sorted(map(score, expected))

    def test_cohort_clamped_to_space(self):
        tiny = ParamSpace(
            name="tiny",
            dimensions=(Dimension("ftq_size", (16, 32)),),
            workloads=("nutch",),
        )
        ctx = StubContext(n_blocks=9000)
        SuccessiveHalvingStrategy(reduction=3, rungs=3).search(
            tiny, ctx, random.Random(0))
        assert len([b for _, b in ctx.calls if b == 1000]) == 2
        # One survivor gets promoted straight to full fidelity.
        assert ctx.calls[-1][1] == 9000

    def test_parameter_validation(self):
        with pytest.raises(ExperimentError):
            SuccessiveHalvingStrategy(reduction=1)
        with pytest.raises(ExperimentError):
            SuccessiveHalvingStrategy(rungs=0)
        with pytest.raises(ExperimentError):
            SuccessiveHalvingStrategy(cohort=0)


class TestRegistry:
    def test_all_registered_strategies_instantiate(self):
        for name in STRATEGIES:
            assert get_strategy(name).name == name

    def test_unknown_strategy_raises(self):
        with pytest.raises(ExperimentError, match="unknown strategy"):
            get_strategy("simulated_annealing")
