"""Tests for the sweep/result-cache layer."""

from repro.config import SchemeConfig
from repro.core.sweep import clear_result_cache, run_scheme, run_schemes


class TestRunScheme:
    def test_cache_hit_returns_same_result(self):
        clear_result_cache()
        first = run_scheme("nutch", "baseline", n_blocks=3000)
        second = run_scheme("nutch", "baseline", n_blocks=3000)
        assert first is second

    def test_cache_respects_config(self):
        clear_result_cache()
        small = run_scheme("nutch", "boomerang", n_blocks=3000,
                           config=SchemeConfig(name="boomerang",
                                               btb_entries=512))
        large = run_scheme("nutch", "boomerang", n_blocks=3000,
                           config=SchemeConfig(name="boomerang",
                                               btb_entries=4096))
        assert small is not large

    def test_cache_bypass(self):
        clear_result_cache()
        first = run_scheme("nutch", "baseline", n_blocks=3000)
        fresh = run_scheme("nutch", "baseline", n_blocks=3000,
                           use_cache=False)
        assert fresh is not first
        assert fresh.cycles == first.cycles  # still deterministic


class TestRunSchemes:
    def test_returns_all_requested(self):
        clear_result_cache()
        results = run_schemes("nutch", ("baseline", "ideal"),
                              n_blocks=3000)
        assert set(results) == {"baseline", "ideal"}
        assert results["ideal"].cycles < results["baseline"].cycles
