"""Telemetry sinks: JSONL stream, Prometheus text, run manifests.

Three ways the collected telemetry leaves the process:

* :class:`TelemetryWriter` — an append-only JSONL event stream (the
  ``--telemetry`` flag / ``REPRO_TELEMETRY`` env).  Progress events,
  supervision events and the final run manifest all land in one file,
  one JSON object per line, each stamped with ``kind``.
* :func:`render_prometheus` — a Prometheus-style text exposition of a
  metrics snapshot, for scraping or eyeballing.
* :class:`RunReport` — the per-invocation **run manifest**: cell
  accounting reconciled with the stderr line (both render the same
  snapshot delta, so they cannot drift), a wall-clock breakdown
  derived from spans (scheduling vs simulate vs cache-probe vs
  retry-backoff), cache hit ratio, per-scheme/per-workload cell
  timings, backend and worker count, engine version + fingerprint,
  and the supervisor's failure report.  Written next to the run
  journal as ``<journal>.manifest.json`` and appended to the JSONL
  stream, which is what ``python -m repro stats`` / ``trace`` read.

This module is deliberately *not* imported from ``repro.obs.__init__``
and imports :mod:`repro.core.diskcache` lazily: fingerprinted modules
import ``repro.obs.metrics`` at module load, and the export layer
reaching back for fingerprint/version stamps must not create a cycle.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs import metrics, tracing


# ---------------------------------------------------------------------------
# JSONL event stream


class TelemetryWriter:
    """Append-only JSONL sink: one JSON object per line, kind-stamped."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    def emit(self, kind: str, **payload: Any) -> None:
        record = {"kind": kind, "ts": time.time()}
        record.update(payload)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")


def _spec_label(spec: Any) -> Optional[str]:
    if spec is None:
        return None
    workload = getattr(spec, "workload", None)
    scheme = getattr(spec, "scheme", None)
    if workload is None or scheme is None:
        return str(spec)
    return f"{workload}/{scheme}"


def progress_sink(writer: TelemetryWriter, wrapped=None):
    """A progress callback streaming every event to *writer* as JSONL.

    Composes: *wrapped* (e.g. the stderr renderer) still sees every
    event afterwards, so ``--telemetry`` and ``--progress`` stack.
    """

    def sink(event) -> None:
        writer.emit(
            "progress",
            event=event.kind,
            done=event.done,
            total=event.total,
            simulated=event.simulated,
            cached=event.cached,
            failed=event.failed,
            elapsed=event.elapsed,
            eta_seconds=event.eta_seconds,
            spec=_spec_label(event.spec),
            source=event.source,
            detail=event.detail,
        )
        if wrapped is not None:
            wrapped(event)

    return sink


# ---------------------------------------------------------------------------
# Prometheus-style text exposition


def _metric_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def render_prometheus(snapshot: Optional[Dict[str, Dict]] = None) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Counters and numeric gauges become plain samples; a non-numeric
    gauge (e.g. ``sweep.last_backend = "process"``) is encoded as a
    ``{value="..."} 1`` labelled sample; histograms expose ``_count``
    and ``_sum`` (plus ``_min``/``_max`` gauges when observed).
    """
    if snapshot is None:
        snapshot = metrics.snapshot()
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            lines.append(f"{metric} {value}")
        else:
            lines.append(f'{metric}{{value="{value}"}} 1')
    for name, value in snapshot.get("histograms", {}).items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        lines.append(f"{metric}_count {value['count']}")
        lines.append(f"{metric}_sum {value['sum']}")
        if value.get("min") is not None:
            lines.append(f"{metric}_min {value['min']}")
        if value.get("max") is not None:
            lines.append(f"{metric}_max {value['max']}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Run manifest


def cache_section(counters: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The manifest's cache section: counts plus hit ratio.

    *counters* is a ``{"cache.hits": n, ...}`` mapping — a snapshot or
    snapshot-delta ``counters`` table; default reads the live registry
    (the shape ``cache stats --json`` emits).
    """
    # Deferred import: diskcache imports repro.obs.metrics at module
    # load, so the export layer must reach back lazily (no cycle).
    from repro.core import diskcache
    if counters is None:
        counters = metrics.snapshot()["counters"]
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    probes = hits + misses
    return {
        "enabled": diskcache.enabled(),
        "hits": hits,
        "misses": misses,
        "stores": counters.get("cache.stores", 0),
        "corrupt": counters.get("cache.corrupt", 0),
        "hit_ratio": (hits / probes) if probes else None,
    }


def _phase_total(spans: Sequence[Dict[str, Any]], name: str) -> float:
    return sum(float(record.get("duration", 0.0))
               for record in spans if record.get("name") == name)


def _cell_timings(spans: Sequence[Dict[str, Any]]) -> Dict[str, Dict]:
    """Per-scheme and per-workload simulate-span timing aggregates."""
    by_scheme: Dict[str, Dict[str, float]] = {}
    by_workload: Dict[str, Dict[str, float]] = {}
    for record in spans:
        if record.get("name") != "simulate":
            continue
        attrs = record.get("attrs") or {}
        duration = float(record.get("duration", 0.0))
        for table, key in ((by_scheme, attrs.get("scheme")),
                           (by_workload, attrs.get("workload"))):
            if key is None:
                continue
            bucket = table.setdefault(
                str(key), {"cells": 0, "seconds": 0.0})
            bucket["cells"] += 1
            bucket["seconds"] += duration
    return {
        "by_scheme": {k: by_scheme[k] for k in sorted(by_scheme)},
        "by_workload": {k: by_workload[k] for k in sorted(by_workload)},
    }


def _failures_section(report) -> Optional[Dict[str, Any]]:
    if report is None:
        return None
    return {
        "quarantined": report.quarantined,
        "retries": report.retries,
        "degraded": [list(step) for step in report.degraded],
        "cells": [
            {
                "spec": _spec_label(cell.spec),
                "carried": cell.carried,
                "error": cell.error,
                "attempts": [dict(attempt) for attempt in cell.attempts],
            }
            for cell in report.cells
        ],
        "summary": report.summary(),
    }


@dataclass
class RunReport:
    """The per-invocation run manifest (DESIGN.md Section 13)."""

    run_id: str
    label: str
    command: str
    created: float
    elapsed: float
    backend: Optional[str]
    workers: Optional[int]
    engine_version: int
    engine_fingerprint: str
    counts: Dict[str, int]
    cache: Dict[str, Any]
    phases: Dict[str, float]
    cells: Dict[str, Dict]
    failures: Optional[Dict[str, Any]]
    metrics: Dict[str, Dict]
    spans: List[Dict[str, Any]] = field(default_factory=list)
    journal: Optional[str] = None
    #: Engine-core selection accounting (``--engine``): requested core,
    #: columnar vs fallback cell counts.  None for interpreter-only runs
    #: (and for manifests written before the field existed).
    engine: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "manifest",
            "run_id": self.run_id,
            "label": self.label,
            "command": self.command,
            "created": self.created,
            "elapsed": self.elapsed,
            "backend": self.backend,
            "workers": self.workers,
            "engine_version": self.engine_version,
            "engine_fingerprint": self.engine_fingerprint,
            "counts": self.counts,
            "cache": self.cache,
            "phases": self.phases,
            "cells": self.cells,
            "failures": self.failures,
            "metrics": self.metrics,
            "spans": self.spans,
            "journal": self.journal,
            "engine": self.engine,
        }

    def render(self) -> str:
        """Human-readable manifest summary (``python -m repro stats``)."""
        counts = self.counts
        lines = [
            f"run {self.run_id} ({self.command})",
            f"  label:    {self.label}",
            f"  backend:  {self.backend or 'auto'}"
            + (f" x{self.workers}" if self.workers else ""),
            f"  engine:   v{self.engine_version} "
            f"fingerprint {self.engine_fingerprint[:12]}",
            f"  elapsed:  {self.elapsed:.2f}s",
            f"  cells:    {counts.get('cells', 0)} total = "
            f"{counts.get('simulated', 0)} simulated + "
            f"{counts.get('cached', 0)} cached + "
            f"{counts.get('quarantined', 0)} quarantined",
        ]
        if self.engine:
            fallbacks = self.engine.get("fallback_cells", 0)
            suffix = f", {fallbacks} fallback" if fallbacks else ""
            lines.append(
                f"  core:     {self.engine.get('requested', '?')} "
                f"({self.engine.get('columnar_cells', 0)} columnar cells"
                f"{suffix})")
        ratio = self.cache.get("hit_ratio")
        ratio_text = f"{ratio:.1%}" if ratio is not None else "n/a"
        lines.append(
            f"  cache:    {self.cache.get('hits', 0)} hits / "
            f"{self.cache.get('misses', 0)} misses "
            f"(ratio {ratio_text}, {self.cache.get('stores', 0)} stores, "
            f"{self.cache.get('corrupt', 0)} corrupt)")
        if self.phases:
            breakdown = ", ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in sorted(self.phases.items()))
            lines.append(f"  phases:   {breakdown}")
        for title, table in (("scheme", self.cells.get("by_scheme", {})),
                             ("workload", self.cells.get("by_workload", {}))):
            for key, bucket in table.items():
                lines.append(
                    f"  {title} {key}: {bucket['cells']} cells, "
                    f"{bucket['seconds']:.2f}s simulate")
        if self.failures:
            lines.append(f"  failures: {self.failures['summary']}")
            for cell in self.failures["cells"]:
                carried = " (carried)" if cell["carried"] else ""
                lines.append(f"    {cell['spec']}{carried}: {cell['error']}")
        if self.journal:
            lines.append(f"  journal:  {self.journal}")
        return "\n".join(lines)


def build_report(run_id: str, label: str, command: str,
                 delta: Dict[str, Dict],
                 spans: Sequence[Dict[str, Any]],
                 elapsed: float,
                 failures=None,
                 journal: Optional[str] = None) -> RunReport:
    """Assemble a :class:`RunReport` from one invocation's delta + spans.

    *delta* is :func:`repro.obs.metrics.delta` over the invocation's
    before/after snapshots — the same delta the stderr accounting line
    renders, which is the no-drift guarantee.
    """
    from repro.core import diskcache
    counters = delta.get("counters", {})
    gauges = delta.get("gauges", {})
    spans = list(spans)
    counts = {
        "cells": counters.get("sweep.cells", 0),
        "simulated": counters.get("sweep.simulations", 0),
        "cached": counters.get("sweep.cached_cells", 0),
        "quarantined": counters.get("sweep.quarantines", 0),
        "retries": counters.get("supervisor.retries", 0),
        "degrades": counters.get("supervisor.degrades", 0),
        "journal_writes": counters.get("journal.writes", 0),
    }
    phases = {
        "schedule": _phase_total(spans, "schedule"),
        "cache_probe": _phase_total(spans, "cache_probe"),
        "execute": _phase_total(spans, "execute"),
        "simulate": _phase_total(spans, "simulate"),
        "retry_backoff": float(
            counters.get("supervisor.backoff_seconds", 0.0)),
    }
    workers = gauges.get("sweep.last_workers")
    requested = gauges.get("engine.requested")
    columnar_cells = counters.get("engine.columnar_cells", 0)
    fallback_cells = counters.get("engine.fallback_cells", 0)
    engine_section: Optional[Dict[str, Any]] = None
    if requested not in (None, "interpreter") \
            or columnar_cells or fallback_cells:
        prefix = "engine.fallback."
        engine_section = {
            "requested": requested or "interpreter",
            "columnar_cells": columnar_cells,
            "fallback_cells": fallback_cells,
            "fallbacks_by_scheme": {
                name[len(prefix):]: value
                for name, value in sorted(counters.items())
                if name.startswith(prefix) and value
            },
        }
    return RunReport(
        run_id=run_id,
        label=label,
        command=command,
        created=time.time(),
        elapsed=elapsed,
        backend=gauges.get("sweep.last_backend"),
        workers=int(workers) if workers is not None else None,
        engine_version=diskcache.ENGINE_VERSION,
        engine_fingerprint=diskcache.engine_fingerprint(),
        counts=counts,
        cache=cache_section(counters),
        phases=phases,
        cells=_cell_timings(spans),
        failures=_failures_section(failures),
        metrics=delta,
        spans=spans,
        journal=journal,
        engine=engine_section,
    )


# ---------------------------------------------------------------------------
# The stderr accounting line (satellite: rendered from the snapshot
# delta, so it can never drift from the manifest)


def render_accounting(label: str, delta: Dict[str, Dict]) -> str:
    """The CLI's cell-accounting stderr line, from a snapshot delta.

    Format is pinned by CI greps: ``[label: N simulated, M cached]``
    with ``, K quarantined`` appended only when K > 0.  ``cached``
    counts *disk-cache* hits (probe + retry-recovered), exactly the
    pre-obs ``diskcache.hits`` delta semantics.
    """
    counters = delta.get("counters", {})
    simulated = counters.get("sweep.simulations", 0)
    cached = counters.get("cache.hits", 0)
    quarantined = counters.get("sweep.quarantines", 0)
    suffix = f", {quarantined} quarantined" if quarantined else ""
    return f"[{label}: {simulated} simulated, {cached} cached{suffix}]"


# ---------------------------------------------------------------------------
# Manifest location / resolution (the stats/trace CLI)


def journals_dir() -> str:
    from repro.core import diskcache
    return os.path.join(diskcache.cache_dir(), "journals")


def manifest_path(journal_path: str) -> str:
    """Manifest file path for a run-journal path (sibling file)."""
    base = journal_path
    if base.endswith(".jsonl"):
        base = base[:-len(".jsonl")]
    return base + ".manifest.json"


def write_manifest(report: RunReport, path: str) -> str:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_manifest(path: str) -> Dict[str, Any]:
    """Parse a manifest from its JSON file or a telemetry JSONL stream.

    A ``.manifest.json`` file holds one manifest object; a telemetry
    JSONL file is scanned for its *last* ``"kind": "manifest"`` line
    (one stream can carry several invocations).
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.read(1)
        handle.seek(0)
        if first == "{":
            payload = json.load(handle)
            if isinstance(payload, dict) and payload.get("kind") == "manifest":
                return payload
            raise ValueError(f"{path} is not a run manifest")
        manifest = None
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("kind") == "manifest":
                manifest = record
        if manifest is None:
            raise ValueError(f"{path} contains no manifest record")
        return manifest


def list_manifests(directory: Optional[str] = None) -> List[str]:
    """Manifest files in *directory* (default: the journals dir),
    newest first by mtime."""
    directory = directory or journals_dir()
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    paths = [os.path.join(directory, name) for name in names
             if name.endswith(".manifest.json")]
    return sorted(paths, key=lambda p: os.path.getmtime(p), reverse=True)


def resolve_manifest(token: Optional[str] = None,
                     directory: Optional[str] = None) -> Dict[str, Any]:
    """Find and load a manifest for the stats/trace CLI.

    *token* may be: None (the most recent manifest in the journals
    directory), a path to a manifest / telemetry JSONL / run-journal
    file, or a run-id prefix matched against journaled manifests.  An
    exact run-id (or manifest-stem) match always wins; a prefix that
    matches *several* runs raises :class:`ReproError` listing the
    candidates instead of silently picking the newest.
    """
    if token:
        if os.path.exists(token):
            if token.endswith(".jsonl") and not os.path.exists(
                    manifest_path(token)):
                return load_manifest(token)  # telemetry stream
            if token.endswith(".manifest.json") or token.endswith(".json"):
                return load_manifest(token)
            sibling = manifest_path(token)
            if os.path.exists(sibling):
                return load_manifest(sibling)
            return load_manifest(token)
        matches = []
        match_ids = []
        for path in list_manifests(directory):
            stem = os.path.basename(path)[:-len(".manifest.json")]
            if stem == token:
                return load_manifest(path)
            if stem.startswith(token):
                matches.append(path)
                match_ids.append(stem)
                continue
            try:
                run_id = load_manifest(path).get("run_id", "")
            except (OSError, ValueError):
                continue
            if run_id == token:
                return load_manifest(path)
            if run_id.startswith(token):
                matches.append(path)
                match_ids.append(run_id)
        if not matches:
            raise FileNotFoundError(
                f"no run manifest matches {token!r} in "
                f"{directory or journals_dir()}")
        if len(matches) > 1:
            listing = ", ".join(sorted(match_ids))
            raise ReproError(
                f"run-id prefix {token!r} is ambiguous — "
                f"{len(matches)} manifests match: {listing}")
        return load_manifest(matches[0])
    manifests = list_manifests(directory)
    if not manifests:
        raise FileNotFoundError(
            f"no run manifests in {directory or journals_dir()} — run a "
            "command with --telemetry first")
    return load_manifest(manifests[0])


def render_manifest(manifest: Dict[str, Any]) -> str:
    """Human summary of a loaded manifest dict (``repro stats``).

    Rehydrates a :class:`RunReport` so the rendering logic lives in one
    place; unknown keys (a newer manifest read by an older tool) are
    dropped rather than fatal.
    """
    fields_wanted = {f.name for f in fields(RunReport)}
    payload = {key: value for key, value in manifest.items()
               if key in fields_wanted}
    defaults: Dict[str, Any] = {
        "run_id": "?", "label": "?", "command": "?",
        "created": 0.0, "elapsed": 0.0,
        "backend": None, "workers": None,
        "engine_version": 0, "engine_fingerprint": "?",
        "counts": {}, "cache": {}, "phases": {}, "cells": {},
        "failures": None, "metrics": {}, "spans": [], "journal": None,
        "engine": None,
    }
    for name in fields_wanted:
        if payload.get(name) is None:
            payload[name] = defaults[name]
    return RunReport(**payload).render()


def render_trace(manifest: Dict[str, Any]) -> str:
    """Span tree of a manifest with self/total times (``repro trace``)."""
    spans = manifest.get("spans") or []
    if not spans:
        return ("no spans recorded — the run was executed without "
                "--telemetry/REPRO_TELEMETRY")
    header = (f"run {manifest.get('run_id', '?')} "
              f"({manifest.get('command', '?')}) — {len(spans)} spans")
    return "\n".join([header] + tracing.tree_lines(spans))


__all__ = [
    "TelemetryWriter",
    "progress_sink",
    "render_prometheus",
    "cache_section",
    "RunReport",
    "build_report",
    "render_accounting",
    "journals_dir",
    "manifest_path",
    "write_manifest",
    "load_manifest",
    "list_manifests",
    "resolve_manifest",
    "render_manifest",
    "render_trace",
]
