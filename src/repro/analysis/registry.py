"""Rule registry for the invariant linter.

Mirrors the :func:`repro.workloads.profiles.register_profile` idiom: a
process-global table keyed by rule id, duplicate registration is an
error unless ``replace=True``, lookups raise with the list of valid
choices.  Rules are plain frozen dataclasses wrapping a check callable,
so tests can register throwaway rules and tear them down again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.reporting import Finding
    from repro.analysis.walker import Project

CheckFn = Callable[["Project"], List["Finding"]]


@dataclass(frozen=True)
class Rule:
    """One registered invariant check.

    ``check`` receives the parsed :class:`~repro.analysis.walker.Project`
    and returns raw findings; suppression filtering happens later in the
    driver, so checks stay pure functions of the tree.
    """

    rule_id: str
    name: str
    description: str
    check: Optional[CheckFn] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.rule_id or not self.rule_id.isalnum():
            raise AnalysisError(
                f"rule id must be alphanumeric, got {self.rule_id!r}")


_RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule, replace: bool = False) -> Rule:
    """Add *rule* to the registry.

    Raises :class:`~repro.errors.AnalysisError` if the id is already
    taken, unless ``replace=True``.  Returns the rule for chaining.
    """
    key = rule.rule_id.upper()
    if key in _RULES and not replace:
        raise AnalysisError(
            f"rule {rule.rule_id!r} is already registered; "
            "pass replace=True to overwrite")
    _RULES[key] = rule
    return rule


def unregister_rule(rule_id: str) -> None:
    """Remove a rule (used by tests); unknown ids are a no-op."""
    _RULES.pop(rule_id.upper(), None)


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (case-insensitive)."""
    try:
        return _RULES[rule_id.upper()]
    except KeyError:
        choices = ", ".join(sorted(_RULES)) or "<none>"
        raise AnalysisError(
            f"unknown rule {rule_id!r}; registered rules: {choices}"
        ) from None


def registered_rules() -> List[Rule]:
    """All registered rules, sorted by id."""
    return [_RULES[key] for key in sorted(_RULES)]


def select_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve a user-supplied rule filter to concrete rules.

    ``None`` (or empty) selects every registered rule that has a check
    callable; explicit ids may select any registered rule and raise on
    unknowns.
    """
    if not rule_ids:
        return [rule for rule in registered_rules() if rule.check is not None]
    selected: List[Rule] = []
    for rule_id in rule_ids:
        rule = get_rule(rule_id)
        if rule not in selected:
            selected.append(rule)
    return selected


__all__ = [
    "Rule",
    "get_rule",
    "register_rule",
    "registered_rules",
    "select_rules",
    "unregister_rule",
]
