"""Unit and property tests for spatial footprints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.prefetch.footprint import FootprintCodec, RegionRecorder


class TestBitvectorCodec:
    def test_paper_example(self):
        """Figure 5b: footprint 01001000-style decoding around target A."""
        codec = FootprintCodec("bitvector", bits=8)
        mask = codec.encode([2, 5])
        offsets = codec.prefetch_offsets(mask)
        assert sorted(offsets) == [0, 2, 5]

    def test_eight_bit_split_is_6_after_2_before(self):
        codec = FootprintCodec("bitvector", bits=8)
        assert codec.after_bits == 6
        assert codec.before_bits == 2

    def test_negative_offsets_encoded(self):
        codec = FootprintCodec("bitvector", bits=8)
        mask = codec.encode([-1, -2, 3])
        assert sorted(codec.prefetch_offsets(mask)) == [-2, -1, 0, 3]

    def test_out_of_range_offsets_dropped(self):
        codec = FootprintCodec("bitvector", bits=8)
        mask = codec.encode([7, -3, 100])
        assert codec.prefetch_offsets(mask) == [0]

    def test_32_bit_covers_wider_region(self):
        codec = FootprintCodec("bitvector", bits=32)
        assert codec.after_bits == 24
        mask = codec.encode([20, -7])
        assert sorted(codec.prefetch_offsets(mask)) == [-7, 0, 20]

    def test_mask_fits_in_declared_bits(self):
        codec = FootprintCodec("bitvector", bits=8)
        mask = codec.encode(range(-2, 7))
        assert mask < (1 << 8)

    @given(st.sets(st.integers(min_value=-2, max_value=6)))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_within_range(self, offsets):
        """Encodable offsets survive an encode/decode round trip."""
        codec = FootprintCodec("bitvector", bits=8)
        offsets.discard(0)  # offset 0 is implicit
        mask = codec.encode(offsets)
        decoded = set(codec.prefetch_offsets(mask))
        assert decoded == offsets | {0}

    @given(offsets=st.sets(st.integers(min_value=-64, max_value=64)),
           bits=st.sampled_from([8, 32]))
    @settings(max_examples=100, deadline=None)
    def test_decoded_is_subset_plus_target(self, offsets, bits):
        """Decoding never invents offsets that were not accessed."""
        codec = FootprintCodec("bitvector", bits=bits)
        decoded = set(codec.prefetch_offsets(codec.encode(offsets)))
        assert decoded <= offsets | {0}


class TestOtherFormats:
    def test_none_prefetches_target_only(self):
        codec = FootprintCodec("none")
        assert codec.prefetch_offsets(codec.encode([1, 2, 3])) == [0]

    def test_fixed_blocks(self):
        codec = FootprintCodec("fixed_blocks", fixed_blocks=5)
        assert codec.prefetch_offsets(0) == [0, 1, 2, 3, 4]

    def test_entire_region_covers_span(self):
        codec = FootprintCodec("entire_region")
        mask = codec.encode([1, 4, -1])
        assert codec.prefetch_offsets(mask) == list(range(-1, 5))

    def test_entire_region_includes_untouched_blocks(self):
        """The over-prefetching the paper penalises: everything between
        entry and exit is fetched, accessed or not."""
        codec = FootprintCodec("entire_region")
        mask = codec.encode([5])  # only +5 accessed
        assert codec.prefetch_offsets(mask) == [0, 1, 2, 3, 4, 5]

    def test_entire_region_clamps(self):
        codec = FootprintCodec("entire_region")
        mask = codec.encode([1000, -1000])
        offsets = codec.prefetch_offsets(mask)
        assert min(offsets) == -127 and max(offsets) == 127

    def test_storage_bits(self):
        assert FootprintCodec("bitvector", bits=8) \
            .storage_bits_per_footprint() == 8
        assert FootprintCodec("entire_region") \
            .storage_bits_per_footprint() == 16
        assert FootprintCodec("none").storage_bits_per_footprint() == 0
        assert FootprintCodec("fixed_blocks") \
            .storage_bits_per_footprint() == 0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            FootprintCodec("bogus")


class TestRegionRecorder:
    def test_records_offsets_relative_to_entry(self):
        codec = FootprintCodec("bitvector", bits=8)
        recorder = RegionRecorder(codec)
        stored = []
        recorder.open(100, stored.append)
        recorder.access(100)   # offset 0 — implicit, not recorded
        recorder.access(102)
        recorder.access(105)
        recorder.close()
        assert stored == [codec.encode([2, 5])]

    def test_open_closes_previous(self):
        codec = FootprintCodec("bitvector", bits=8)
        recorder = RegionRecorder(codec)
        stored = []
        recorder.open(100, stored.append)
        recorder.access(101)
        recorder.open(200, stored.append)  # implicit close
        recorder.access(203)
        recorder.close()
        assert stored == [codec.encode([1]), codec.encode([3])]
        assert recorder.regions_recorded == 2

    def test_access_without_open_is_ignored(self):
        recorder = RegionRecorder(FootprintCodec("bitvector", bits=8))
        recorder.access(123)  # must not raise
        recorder.close()
        assert recorder.regions_recorded == 0

    def test_duplicate_accesses_collapse(self):
        codec = FootprintCodec("bitvector", bits=8)
        recorder = RegionRecorder(codec)
        stored = []
        recorder.open(50, stored.append)
        for _ in range(5):
            recorder.access(51)
        recorder.close()
        assert stored == [codec.encode([1])]
