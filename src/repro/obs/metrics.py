"""Process-wide metrics registry: counters, gauges, histograms.

One registry per process, guarded by a single reentrant module lock
(the ``_SIM_LOCK`` pattern the RPR004 fork-safety rule enforces): the
thread backend increments instruments from many threads concurrently,
and a bare ``n += 1`` loses updates.  Process-pool workers accumulate
into their *own* registry — the sweep scheduler mirrors worker-side
simulations into the parent exactly as it always has
(:func:`repro.core.sweep.note_remote_result`), so parent-side deltas
stay authoritative for accounting.

Instrument naming scheme (dotted, lowercase, ``subsystem.event``):

* ``cache.hits`` / ``cache.misses`` / ``cache.stores`` /
  ``cache.corrupt`` — the disk-cache counters (the pre-obs module
  globals of :mod:`repro.core.diskcache` are compatibility shims over
  these).
* ``sweep.simulations`` / ``sweep.quarantines`` / ``sweep.memo_hits``
  / ``sweep.cells`` — scheduler accounting (ditto for the pre-obs
  ``sweep.simulations``/``sweep.quarantines`` module globals).
* ``supervisor.retries`` / ``supervisor.quarantines`` /
  ``supervisor.degrades`` / ``supervisor.backoff_seconds`` — fault
  tolerance.
* ``journal.writes`` / ``journal.crc_dropped`` — run-journal health.
* ``chunking.units`` / ``chunking.cells`` / ``chunking.last_*`` —
  work-unit scheduling decisions.
* ``engine.phase.<mode>`` (histogram) and ``profile.samples.<phase>``
  — the engine phase timing/sampling hook (:mod:`repro.obs.profile`).

The registry is append-only within a process: instruments are created
on first use and live forever.  :func:`snapshot` captures every value;
:func:`delta` subtracts two snapshots, which is how the CLI's stderr
accounting line and the run manifest are guaranteed to agree — both
render the same snapshot delta.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

#: Guards every instrument's state and the instrument tables.  Reentrant
#: so :func:`snapshot` can read instrument values while holding it.
_REGISTRY_LOCK = threading.RLock()

_COUNTERS: Dict[str, "Counter"] = {}
_GAUGES: Dict[str, "Gauge"] = {}
_HISTOGRAMS: Dict[str, "Histogram"] = {}


class Counter:
    """A monotonically-increasing value (int or float amounts)."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount=1) -> None:
        with _REGISTRY_LOCK:
            self._value += amount

    @property
    def value(self):
        with _REGISTRY_LOCK:
            return self._value

    def reset(self) -> None:
        with _REGISTRY_LOCK:
            self._value = 0


class Gauge:
    """A point-in-time value (numeric, or a label like a backend name)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Any = None

    def set(self, value: Any) -> None:
        with _REGISTRY_LOCK:
            self._value = value

    @property
    def value(self) -> Any:
        with _REGISTRY_LOCK:
            return self._value

    def reset(self) -> None:
        with _REGISTRY_LOCK:
            self._value = None


class Histogram:
    """Streaming summary of observed values: count/sum/min/max.

    Deliberately bucket-free: the consumers (run manifest, Prometheus
    snapshot) want totals and extremes, and a fixed-bucket histogram
    would need per-instrument tuning to be meaningful.
    """

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        with _REGISTRY_LOCK:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def value(self) -> Dict[str, Any]:
        with _REGISTRY_LOCK:
            return {"count": self._count, "sum": self._sum,
                    "min": self._min, "max": self._max}

    def merge(self, stats: Dict[str, Any]) -> None:
        """Fold another histogram's count/sum/min/max into this one."""
        with _REGISTRY_LOCK:
            self._count += int(stats.get("count", 0))
            self._sum += float(stats.get("sum", 0.0))
            for bound, pick in (("min", min), ("max", max)):
                value = stats.get(bound)
                if value is None:
                    continue
                current = self._min if bound == "min" else self._max
                merged = value if current is None else pick(current, value)
                if bound == "min":
                    self._min = merged
                else:
                    self._max = merged

    def reset(self) -> None:
        with _REGISTRY_LOCK:
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None


def counter(name: str) -> Counter:
    """The process-wide counter *name* (created on first use)."""
    with _REGISTRY_LOCK:
        instrument = _COUNTERS.get(name)
        if instrument is None:
            instrument = Counter(name)
            _COUNTERS[name] = instrument
        return instrument


def gauge(name: str) -> Gauge:
    """The process-wide gauge *name* (created on first use)."""
    with _REGISTRY_LOCK:
        instrument = _GAUGES.get(name)
        if instrument is None:
            instrument = Gauge(name)
            _GAUGES[name] = instrument
        return instrument


def histogram(name: str) -> Histogram:
    """The process-wide histogram *name* (created on first use)."""
    with _REGISTRY_LOCK:
        instrument = _HISTOGRAMS.get(name)
        if instrument is None:
            instrument = Histogram(name)
            _HISTOGRAMS[name] = instrument
        return instrument


def snapshot() -> Dict[str, Dict[str, Any]]:
    """Point-in-time copy of every instrument's value.

    ``{"counters": {name: n}, "gauges": {name: v},
    "histograms": {name: {count, sum, min, max}}}`` — plain JSON-ready
    data, safe to hold across further updates.
    """
    with _REGISTRY_LOCK:
        return {
            "counters": {name: inst.value
                         for name, inst in sorted(_COUNTERS.items())},
            "gauges": {name: inst.value
                       for name, inst in sorted(_GAUGES.items())},
            "histograms": {name: inst.value
                           for name, inst in sorted(_HISTOGRAMS.items())},
        }


def delta(before: Dict[str, Dict[str, Any]],
          after: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Subtract snapshot *before* from *after*.

    Counters and histogram count/sum subtract (instruments absent from
    *before* count from zero); gauges keep their *after* value — a
    gauge is a reading, not an accumulation.
    """
    counters = {
        name: value - before.get("counters", {}).get(name, 0)
        for name, value in after.get("counters", {}).items()
    }
    histograms = {}
    for name, value in after.get("histograms", {}).items():
        base = before.get("histograms", {}).get(
            name, {"count": 0, "sum": 0.0})
        histograms[name] = {
            "count": value["count"] - base.get("count", 0),
            "sum": value["sum"] - base.get("sum", 0.0),
            "min": value["min"],
            "max": value["max"],
        }
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }


def counter_delta(d: Dict[str, Dict[str, Any]], name: str):
    """Convenience: one counter's value out of a snapshot/delta dict."""
    return d.get("counters", {}).get(name, 0)


def absorb(shipped: Dict[str, Dict[str, Any]]) -> None:
    """Fold a worker process's metric delta into this registry.

    Counters add, histograms merge; gauges are ignored (a worker's
    point-in-time reading is not meaningful in the parent).  The
    *shipper* decides which instruments travel — see
    ``repro.core.exec.backends._run_unit``, which excludes counters the
    parent already accounts for itself (probe misses, simulations).
    """
    for name, value in (shipped.get("counters") or {}).items():
        if value:
            counter(name).inc(value)
    for name, stats in (shipped.get("histograms") or {}).items():
        if stats.get("count"):
            histogram(name).merge(stats)


def reset_all() -> None:
    """Zero every instrument (tests; compatibility reset hooks)."""
    with _REGISTRY_LOCK:
        for table in (_COUNTERS, _GAUGES, _HISTOGRAMS):
            for instrument in table.values():
                instrument.reset()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "delta",
    "counter_delta",
    "absorb",
    "reset_all",
]
