"""Unit tests for the TAGE and bimodal direction predictors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.isa import BranchKind
from repro.uarch.tage import BimodalPredictor, PrecomputedHistoryTage, \
    TagePredictor, _FoldedHistory, precompute_fold_sequences


def _run(predictor, outcomes, pc=0x4000):
    wrong = 0
    for taken in outcomes:
        predicted = predictor.predict(pc)
        predictor.update(pc, taken)
        wrong += predicted != taken
    return wrong / len(outcomes)


class TestFoldedHistory:
    @given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=300),
           hist_len=st.sampled_from([5, 10, 20, 50]),
           folded_len=st.sampled_from([7, 9, 10]))
    @settings(max_examples=60, deadline=None)
    def test_matches_recomputed_fold(self, bits, hist_len, folded_len):
        """Incremental fold equals XOR-folding the raw history window."""
        fold = _FoldedHistory(hist_len, folded_len)
        window = [0] * hist_len  # window[0] is newest
        for bit in bits:
            dropped = window[-1]
            window = [bit] + window[:-1]
            fold.update(bit, dropped)
            # Reference: value = XOR of folded chunks, where history bit i
            # (newest = 0) contributes at position i mod folded_len ...
            # matching the circular-shift-register semantics: newest bit
            # enters at bit 0 and shifts left once per update.
            reference = 0
            for i, b in enumerate(window):  # i updates ago
                if b:
                    # After i further shifts, the bit originally at
                    # position 0 sits at position i (mod wrap-with-xor).
                    reference ^= _shift_position(i, folded_len)
            assert fold.value == reference


def _shift_position(age: int, folded_len: int) -> int:
    """Value contributed by a set bit inserted *age* updates ago."""
    value = 1  # inserted at bit 0
    for _ in range(age):
        value <<= 1
        if value >> folded_len:
            value = (value & ((1 << folded_len) - 1)) ^ 1
    return value


class TestTagePatterns:
    def test_learns_alternating(self):
        outcomes = [i % 2 == 0 for i in range(2000)]
        assert _run(TagePredictor(), outcomes) < 0.05

    def test_learns_loop_exits(self):
        outcomes = [(i % 6) != 5 for i in range(3000)]
        assert _run(TagePredictor(), outcomes) < 0.02

    def test_biased_branch_near_floor(self):
        rng = np.random.default_rng(1)
        outcomes = list(rng.random(3000) < 0.95)
        assert _run(TagePredictor(), outcomes) < 0.12

    def test_beats_bimodal_on_patterns(self):
        outcomes = [(i % 4) != 3 for i in range(2000)]
        tage = _run(TagePredictor(), outcomes)
        bimodal = _run(BimodalPredictor(), outcomes)
        assert tage < bimodal

    def test_interleaved_branches_do_not_alias_destructively(self):
        tage = TagePredictor()
        rng = np.random.default_rng(2)
        pcs = [0x1000 + i * 4 for i in range(32)]
        wrong = total = 0
        for it in range(6000):
            pc = pcs[it % len(pcs)]
            taken = bool(rng.random() < (0.98 if pc % 8 else 0.02))
            predicted = tage.predict(pc)
            tage.update(pc, taken)
            wrong += predicted != taken
            total += 1
        assert wrong / total < 0.1

    def test_accuracy_property(self):
        tage = TagePredictor()
        assert tage.accuracy == 0.0
        _run(tage, [True] * 100)
        assert tage.accuracy > 0.9

    def test_cold_update_trains_without_prediction(self):
        tage = TagePredictor()
        for _ in range(10):
            tage.update(0x1000, True)  # no preceding predict
        assert tage.predict(0x1000) is True

    def test_storage_within_budget(self):
        tage = TagePredictor()
        assert tage.storage_bits() <= 8 * 1024 * 8

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            TagePredictor(bimodal_entries=1000)  # not a power of two
        with pytest.raises(ConfigError):
            TagePredictor(histories=(50, 20, 8, 5))  # not increasing


class TestFusedAndPrecomputed:
    """The fused and trace-replay paths are bit-identical to the split
    predict/update protocol."""

    COND = int(BranchKind.COND)
    JUMP = int(BranchKind.JUMP)

    def _stream(self, n=4000, seed=9):
        rng = np.random.default_rng(seed)
        pcs = [0x4000 + int(i) * 4 for i in rng.integers(0, 96, size=n)]
        kinds = [self.COND if r < 0.8 else self.JUMP
                 for r in rng.random(n)]
        takens = [bool((pc >> 4) % 3 != 0) ^ bool(rng.random() < 0.05)
                  for pc in pcs]
        return pcs, kinds, takens

    def test_predict_update_matches_split_protocol(self):
        pcs, kinds, takens = self._stream()
        split, fused = TagePredictor(), TagePredictor()
        for pc, kind, taken in zip(pcs, kinds, takens):
            if kind != self.COND:
                continue
            expected = split.predict(pc)
            split.update(pc, taken)
            assert fused.predict_update(pc, taken) == expected
        assert fused.mispredictions == split.mispredictions

    def test_precomputed_history_matches_dynamic(self):
        pcs, kinds, takens = self._stream()
        seqs = precompute_fold_sequences(kinds, takens, self.COND)
        dynamic = TagePredictor()
        replay = PrecomputedHistoryTage(seqs)
        for pc, kind, taken in zip(pcs, kinds, takens):
            if kind != self.COND:
                continue
            expected = dynamic.predict(pc)
            dynamic.update(pc, taken)
            assert replay.predict_update(pc, taken) == expected
        assert replay.mispredictions == dynamic.mispredictions

    def test_precomputed_split_protocol_matches_dynamic(self):
        pcs, kinds, takens = self._stream(seed=11)
        seqs = precompute_fold_sequences(kinds, takens, self.COND)
        dynamic = TagePredictor()
        replay = PrecomputedHistoryTage(seqs)
        for pc, kind, taken in zip(pcs, kinds, takens):
            if kind != self.COND:
                continue
            expected = dynamic.predict(pc)
            dynamic.update(pc, taken)
            assert replay.predict(pc) == expected
            replay.update(pc, taken)

    def test_rejects_mismatched_sequences(self):
        pcs, kinds, takens = self._stream()
        seqs = precompute_fold_sequences(kinds, takens, self.COND)
        with pytest.raises(ConfigError):
            # Same table count, different unpack geometry: must refuse
            # rather than silently mis-unpack every packed fold.
            PrecomputedHistoryTage(seqs, tagged_entries=2048)
        with pytest.raises(ConfigError):
            PrecomputedHistoryTage(seqs._replace(seqs=seqs.seqs[:2]))


class TestBimodal:
    def test_learns_bias(self):
        assert _run(BimodalPredictor(), [True] * 200) < 0.05

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigError):
            BimodalPredictor(100)
