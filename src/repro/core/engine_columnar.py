"""Columnar batched engine: array-at-a-time replay of the interpreter.

The interpreter engine (:mod:`repro.core.frontend`) walks the trace one
block at a time, interleaving control-flow delivery, cache probes and
clock accounting in a single Python loop.  For the two clock-free
delivery models — the ideal front-end and the demand-driven baseline —
that interleaving is unnecessary: the scheme's lookup/fill behaviour,
the TAGE direction stream, the L1-I/LLC hit sequences and the synthetic
L1-D miss schedule are all *pure functions of the trace* (no component
reads the clock), so they can each be computed in one dedicated pass
and the clock recurrence evaluated over precomputed per-block addend
arrays (DESIGN.md Section 14).

The engine therefore runs in stages:

1. **Control pass** (cached per trace x BTB geometry): replay the BTB /
   TAGE / RAS interaction with a fresh scheme replica at ``now=0.0`` —
   exactly the calls the interpreter makes — producing per-block
   mispredict/flush masks and their prefix sums.  The TAGE replay rides
   the :class:`~repro.uarch.tage.PrecomputedHistoryTage` folded-history
   precomputation, which is the batching seam: one fold replay serves
   every parameter point simulated on the trace.
2. **Memory pass** (cached per trace x cache geometry): replay the
   L1-I/LLC LRU state machines (:meth:`SetAssocCache.probe_insert`) to
   an ordered L1-I-miss event list with per-event LLC hit flags.  Only
   the *latencies* are clock-dependent (NoC load), never the hit/miss
   outcomes.
3. **L1-D pass** (cached per trace x miss rate): replay the fractional
   miss accumulator to a (block, miss-count) drain schedule.
4. **Timing pass** (per parameter point): advance the clock over the
   vectorised addend array with ``np.add.accumulate`` (strictly
   sequential, the same left-to-right IEEE additions the interpreter
   performs; short segments use scalar adds — same arithmetic, less
   per-call overhead), dropping to an exact scalar replay only at event
   blocks (L1-I misses, L1-D drains, the warm-up boundary).

Bit-identity is the contract: every floating-point operation matches
the interpreter's order and operand types, so
``SimulationResult``/``EngineStats`` are equal to the last bit and the
engine-selection flag is output-neutral (enforced by the differential
test suite).  Schemes the replay cannot cover (run-ahead modes, custom
predictors) are rejected — :mod:`repro.core.engine_select` falls back
to the interpreter per cell and accounts for it in the run manifest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import MicroarchParams
from repro.core.frontend import _CALL_KINDS, _KIND_COND, _KIND_OBJS, \
    _RET_KINDS, _static_target_map
from repro.core.metrics import EngineStats, SimulationResult
from repro.errors import SimulationError
from repro.prefetch.base import Scheme
from repro.prefetch.baseline import BaselineScheme, IdealScheme
from repro.uarch.cache import SetAssocCache
from repro.uarch.interconnect import NocModel
from repro.uarch.ras import ReturnAddressStack
from repro.uarch.tage import PrecomputedHistoryTage, \
    precompute_fold_sequences, replay_cond_mispredicts
from repro.workloads.trace import Trace

#: Clock segments shorter than this advance with scalar Python-float
#: adds instead of ``np.add.accumulate`` — numpy's per-call overhead
#: only pays for itself on longer runs.  Both paths perform the same
#: left-to-right IEEE additions, so the cutoff is a speed knob, never a
#: results knob.
_SCALAR_SEGMENT = 32


def supports(scheme: Scheme, predictor=None) -> bool:
    """Whether the columnar engine can replay this cell bit-identically.

    Exact-type checks on purpose: a subclass may override hooks the
    replay does not model (``on_fetch_line``, ``on_retire``), silently
    changing semantics — such schemes fall back to the interpreter.  A
    custom predictor likewise bypasses the trace-derived TAGE replay.
    """
    if predictor is not None:
        return False
    return type(scheme) in (IdealScheme, BaselineScheme)


# ---------------------------------------------------------------------------
# Precomputation passes (cached on ``trace.derived``)
# ---------------------------------------------------------------------------


def _prefix(flags, n: int) -> np.ndarray:
    """int64 prefix-sum array of length ``n + 1`` over boolean *flags*."""
    out = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.asarray(flags, dtype=np.int64), out=out[1:])
    return out


def _fold_sequences(trace: Trace):
    """The trace's TAGE folded-history sequences (shared with the
    interpreter via the same ``trace.derived`` slot)."""
    seqs = trace.derived.get("tage_folds")
    if seqs is None:
        hot = trace.hot
        seqs = precompute_fold_sequences(hot.kind, hot.taken, _KIND_COND)
        trace.derived["tage_folds"] = seqs
    return seqs


def _cond_prefix(trace: Trace) -> np.ndarray:
    """Prefix counts of conditional blocks (ideal-mode boundary stats)."""
    cached = trace.derived.get("columnar.cond_prefix")
    if cached is None:
        cached = _prefix(trace.cols.kind == _KIND_COND, len(trace))
        trace.derived["columnar.cond_prefix"] = cached
    return cached


def _access_prefix(trace: Trace) -> np.ndarray:
    """Prefix counts of L1-I demand accesses (1 or 2 lines per block)."""
    cached = trace.derived.get("columnar.access_prefix")
    if cached is None:
        cols = trace.cols
        counts = 1 + (cols.last_line != cols.first_line).astype(np.int64)
        cached = np.zeros(len(trace) + 1, dtype=np.int64)
        np.cumsum(counts, out=cached[1:])
        trace.derived["columnar.access_prefix"] = cached
    return cached


def _ideal_control(trace: Trace) -> Tuple[np.ndarray, List[bool],
                                          np.ndarray]:
    """Ideal-mode direction-mispredict flags, as (mask, list, prefix).

    A full-trace TAGE replay over the conditional blocks — exactly the
    ``predict_update`` calls the interpreter's ideal loop makes.  Pure
    function of the trace (the predictor never reads time), so one
    replay serves every parameter point.
    """
    cached = trace.derived.get("columnar.ctrl.ideal")
    if cached is None:
        hot = trace.hot
        flags = replay_cond_mispredicts(
            _fold_sequences(trace), hot.pc, hot.kind, hot.taken, _KIND_COND)
        misp = np.asarray(flags, dtype=bool)
        cached = (misp, flags, _prefix(misp, len(trace)))
        trace.derived["columnar.ctrl.ideal"] = cached
    return cached


def _demand_control(trace: Trace, scheme: BaselineScheme,
                    params: MicroarchParams) -> Dict[str, object]:
    """Demand-mode control masks from a clock-free scheme replay.

    Replays the interpreter's ``_run_demand`` control section verbatim
    against a *fresh* scheme replica (same BTB geometry), a fresh
    trace-derived TAGE and a fresh RAS, all at ``now=0.0`` — legal
    because the baseline scheme, the predictor and the RAS never read
    the clock.  The caller's scheme instance is left untouched; every
    real call site builds a fresh scheme per cell, so nothing observes
    post-run scheme state.
    """
    key = ("columnar.ctrl.demand",) + scheme.btb.geometry \
        + (params.ras_size,)
    cached = trace.derived.get(key)
    if cached is None:
        hot = trace.hot
        pcs, ninstrs, kinds, takens, targets = (
            hot.pc, hot.ninstr, hot.kind, hot.taken, hot.target
        )
        fallthroughs = hot.fallthrough
        n = len(pcs)
        entries, assoc = scheme.btb.geometry
        replica = BaselineScheme(btb_entries=entries, btb_assoc=assoc)
        predictor = PrecomputedHistoryTage(_fold_sequences(trace))
        ras = ReturnAddressStack(params.ras_size)
        static_get = _static_target_map(trace).get
        kind_objs = _KIND_OBJS
        lookup = replica.lookup
        demand_fill = replica.demand_fill
        predict_update = predictor.predict_update
        update = predictor.update
        ras_push = ras.push
        ras_pop = ras.pop

        cond = [False] * n
        dirm = [False] * n
        tgtm = [False] * n
        btbm = [False] * n
        btbf = [False] * n
        for i in range(n):
            pc = pcs[i]
            ninstr = ninstrs[i]
            kind = kinds[i]
            taken = takens[i]
            target = targets[i]
            hit = lookup(pc, 0.0)
            if hit is None:
                btbm[i] = True
                if kind == _KIND_COND:
                    cond[i] = True
                    update(pc, taken)  # cold train
                if kind in _CALL_KINDS:
                    ras_push(fallthroughs[i], pc)
                elif kind in _RET_KINDS:
                    ras_pop()
                if taken:
                    btbf[i] = True
                demand_fill(pc, ninstr, kind_objs[kind],
                            target if taken else static_get(pc, target),
                            0.0)
            elif kind == _KIND_COND:
                cond[i] = True
                if predict_update(pc, taken) != taken:
                    dirm[i] = True
                elif taken and hit.target != target:
                    tgtm[i] = True
                    demand_fill(pc, ninstr, kind_objs[kind], target, 0.0)
            elif kind in _CALL_KINDS:
                ras_push(fallthroughs[i], pc)
                if hit.target != target:
                    tgtm[i] = True
                    demand_fill(pc, ninstr, kind_objs[kind], target, 0.0)
            elif kind in _RET_KINDS:
                entry = ras_pop()
                if (entry.return_addr if entry else -1) != target:
                    tgtm[i] = True
            elif hit.target != target:  # JUMP
                tgtm[i] = True
                demand_fill(pc, ninstr, kind_objs[kind], target, 0.0)

        flush = np.asarray(dirm, dtype=bool) \
            | np.asarray(tgtm, dtype=bool) | np.asarray(btbf, dtype=bool)
        cached = {
            "cond": _prefix(cond, n),
            "dir": _prefix(dirm, n),
            "tgt": _prefix(tgtm, n),
            "btbm": _prefix(btbm, n),
            "btbf": _prefix(btbf, n),
            "flush": flush,
            "flush_list": flush.tolist(),
        }
        trace.derived[key] = cached
    return cached


def _memory_events(trace: Trace, params: MicroarchParams) \
        -> Tuple[List[int], List[bool]]:
    """Ordered L1-I demand-miss events as (block index, LLC-hit) lists.

    Replays the L1-I and LLC LRU state machines over the per-block line
    accesses in trace order (first line, then the terminating branch's
    line when different), with the warm-LLC image preload the
    interpreter applies.  Hit/miss outcomes are clock-free; only the
    NoC latency of each miss is computed in the timing pass.
    """
    key = ("columnar.mem", params.l1i_bytes, params.l1i_assoc,
           params.line_bytes, params.llc_bytes, params.llc_assoc)
    cached = trace.derived.get(key)
    if cached is None:
        hot = trace.hot
        first_lines, last_lines = hot.first_line, hot.last_line
        l1i = SetAssocCache(params.l1i_bytes, params.l1i_assoc,
                            params.line_bytes)
        llc = SetAssocCache(params.llc_bytes, params.llc_assoc,
                            params.line_bytes)
        if trace.generated is not None:
            llc_warm = llc.insert
            for line in trace.generated.program.image:
                llc_warm(line)
        l1i_probe = l1i.probe_insert
        llc_probe = llc.probe_insert
        ev_block: List[int] = []
        ev_llc_hit: List[bool] = []
        for i in range(len(first_lines)):
            line = first_lines[i]
            if not l1i_probe(line):
                ev_block.append(i)
                ev_llc_hit.append(llc_probe(line))
            last = last_lines[i]
            if last != line and not l1i_probe(last):
                ev_block.append(i)
                ev_llc_hit.append(llc_probe(last))
        cached = (ev_block, ev_llc_hit)
        trace.derived[key] = cached
    return cached


def _l1d_schedule(trace: Trace, rate: float) \
        -> Tuple[List[int], List[int]]:
    """L1-D drain schedule as (block index, miss count) lists.

    Replays the interpreter's fractional accumulator with the identical
    float operations (``accum += ninstr * rate / 1000.0``, drain while
    ``>= 1.0``), so the drain blocks and per-drain miss counts match
    exactly.  The interpreter's in-drain ``+= 0 * rate / 1000.0`` is an
    exact no-op (adds literal ``0.0``) and is elided.
    """
    key = ("columnar.l1d", rate)
    cached = trace.derived.get(key)
    if cached is None:
        blocks: List[int] = []
        counts: List[int] = []
        accum = 0.0
        for i, ninstr in enumerate(trace.hot.ninstr):
            accum += ninstr * rate / 1000.0
            if accum >= 1.0:
                count = 0
                while accum >= 1.0:
                    accum -= 1.0
                    count += 1
                blocks.append(i)
                counts.append(count)
        cached = (blocks, counts)
        trace.derived[key] = cached
    return cached


# ---------------------------------------------------------------------------
# Clock advance
# ---------------------------------------------------------------------------


def _advance(clock: float, addend: np.ndarray, addend_list: List[float],
             start: int, stop: int, buf: np.ndarray) -> float:
    """Fold ``addend[start:stop]`` into *clock*, strictly left to right.

    ``np.add.accumulate`` is a sequential (non-pairwise) reduction, so
    the long path performs exactly the interpreter's add sequence; the
    short path does the same adds as Python floats.
    """
    m = stop - start
    if m <= 0:
        return clock
    if m < _SCALAR_SEGMENT:
        for k in range(start, stop):
            clock += addend_list[k]
        return clock
    seg = buf[:m + 1]
    seg[0] = clock
    seg[1:] = addend[start:stop]
    np.add.accumulate(seg, out=seg)
    return float(seg[m])


# ---------------------------------------------------------------------------
# Timing passes
# ---------------------------------------------------------------------------


def _run_ideal(trace: Trace, params: MicroarchParams, rate: float,
               warmup_fraction: float):
    n = len(trace)
    warmup = int(n * warmup_fraction)
    stats = EngineStats()
    snapshot: Optional[EngineStats] = None

    cols = trace.cols
    misp_arr, misp_list, misp_prefix = _ideal_control(trace)
    cond_prefix = _cond_prefix(trace)
    instr_prefix = cols.instr_prefix
    l1d_blocks, l1d_counts = _l1d_schedule(trace, rate)

    issue_width = params.issue_width
    flush = params.flush_penalty
    q = cols.ninstr_f64 / issue_width
    q_list = q.tolist()
    # Expanded addend stream: the interpreter adds a mispredicted
    # conditional's flush penalty to the clock *before* the block's
    # issue quotient (two separate adds), so the flush is inserted
    # ahead of the block's quotient.  Block i's first addend sits at
    # expanded index ``i + misp_prefix[i]``.
    expanded = np.insert(q, np.flatnonzero(misp_arr), float(flush))
    expanded_list = expanded.tolist()
    buf = np.empty(len(expanded) + 1, dtype=np.float64)

    noc_request = NocModel(base_latency=float(params.llc_latency)).request
    memory_extra = 0.15 * params.memory_latency
    exposure = params.l1d_stall_exposure
    l1d_misses = 0
    l1d_fill = 0.0

    special_set = set(l1d_blocks)
    if warmup > 0:
        special_set.add(warmup)
    specials = sorted(special_set)
    n_l1d = len(l1d_blocks)

    clock = 0.0
    ptr = 0
    li = 0
    for s in specials:
        clock = _advance(clock, expanded, expanded_list,
                         ptr + int(misp_prefix[ptr]),
                         s + int(misp_prefix[s]), buf)
        if s == warmup:
            stats.cycles = clock
            stats.conditional_branches = int(cond_prefix[s])
            stats.dir_mispredicts = int(misp_prefix[s])
            stats.stall_dir_flush = float(int(misp_prefix[s]) * flush)
            stats.blocks = s
            stats.instructions = int(instr_prefix[s])
            stats.l1d_misses = l1d_misses
            stats.l1d_fill_cycles = l1d_fill
            snapshot = stats.snapshot()
            if not (li < n_l1d and l1d_blocks[li] == s):
                ptr = s
                continue
        # L1-D drain block: replay it scalar, interpreter op for op.
        if misp_list[s]:
            clock += flush
        clock += q_list[s]
        dstall = 0.0
        for _ in range(l1d_counts[li]):
            latency = noc_request(clock) + memory_extra
            l1d_misses += 1
            l1d_fill += latency
            dstall += latency * exposure
        clock += dstall
        li += 1
        ptr = s + 1
    clock = _advance(clock, expanded, expanded_list,
                     ptr + int(misp_prefix[ptr]),
                     n + int(misp_prefix[n]), buf)

    stats.cycles = clock
    stats.conditional_branches = int(cond_prefix[n])
    stats.dir_mispredicts = int(misp_prefix[n])
    stats.stall_dir_flush = float(int(misp_prefix[n]) * flush)
    stats.blocks = n
    stats.instructions = int(instr_prefix[n])
    stats.l1d_misses = l1d_misses
    stats.l1d_fill_cycles = l1d_fill
    return stats, snapshot, warmup


def _run_demand(trace: Trace, scheme: BaselineScheme,
                params: MicroarchParams, rate: float,
                warmup_fraction: float):
    n = len(trace)
    warmup = int(n * warmup_fraction)
    stats = EngineStats()
    snapshot: Optional[EngineStats] = None

    cols = trace.cols
    ctrl = _demand_control(trace, scheme, params)
    mem_blocks, mem_llc_hit = _memory_events(trace, params)
    l1d_blocks, l1d_counts = _l1d_schedule(trace, rate)
    access_prefix = _access_prefix(trace)
    instr_prefix = cols.instr_prefix
    cond_prefix = ctrl["cond"]
    dir_prefix = ctrl["dir"]
    tgt_prefix = ctrl["tgt"]
    btbm_prefix = ctrl["btbm"]
    btbf_prefix = ctrl["btbf"]
    flush_list = ctrl["flush_list"]

    issue_width = params.issue_width
    flush = params.flush_penalty
    q = cols.ninstr_f64 / issue_width
    q_list = q.tolist()
    # Per-block addend for event-free blocks: the interpreter computes
    # ``(stall + flush_cycles) + ninstr / issue_width`` with stall == 0.0
    # and adds it to the clock once; ``0.0 + flush`` is exactly
    # ``float(flush)``, so the vectorised form is one identical add.
    addend = np.where(ctrl["flush"], float(flush), 0.0) + q
    addend_list = addend.tolist()
    buf = np.empty(n + 1, dtype=np.float64)

    noc_request = NocModel(base_latency=float(params.llc_latency)).request
    memory_latency = params.memory_latency
    memory_extra = 0.15 * memory_latency
    exposure = params.l1d_stall_exposure
    stall_l1i = 0.0
    l1d_misses = 0
    l1d_fill = 0.0

    special_set = set(mem_blocks) | set(l1d_blocks)
    if warmup > 0:
        special_set.add(warmup)
    specials = sorted(special_set)
    n_mem = len(mem_blocks)
    n_l1d = len(l1d_blocks)

    clock = 0.0
    ptr = 0
    mi = 0
    li = 0
    for s in specials:
        clock = _advance(clock, addend, addend_list, ptr, s, buf)
        if s == warmup:
            stats.cycles = clock
            stats.conditional_branches = int(cond_prefix[s])
            stats.dir_mispredicts = int(dir_prefix[s])
            stats.target_mispredicts = int(tgt_prefix[s])
            stats.btb_misses = int(btbm_prefix[s])
            stats.stall_dir_flush = float(int(dir_prefix[s]) * flush)
            stats.stall_target_flush = float(int(tgt_prefix[s]) * flush)
            stats.stall_btb_flush = float(int(btbf_prefix[s]) * flush)
            stats.blocks = s
            stats.instructions = int(instr_prefix[s])
            stats.l1i_demand_accesses = int(access_prefix[s])
            stats.l1i_demand_misses = mi
            stats.llc_requests = mi
            stats.stall_l1i = stall_l1i
            stats.l1d_misses = l1d_misses
            stats.l1d_fill_cycles = l1d_fill
            snapshot = stats.snapshot()
            if not ((mi < n_mem and mem_blocks[mi] == s)
                    or (li < n_l1d and l1d_blocks[li] == s)):
                ptr = s
                continue
        # Event block: replay it scalar, interpreter op for op.  Each
        # L1-I miss is a NoC request at ``clock + stall-so-far`` (the
        # second line's demand sees the first line's fill latency),
        # plus the memory latency when the LLC missed.
        stall = 0.0
        while mi < n_mem and mem_blocks[mi] == s:
            latency = noc_request(clock + stall)
            if not mem_llc_hit[mi]:
                latency = latency + memory_latency
            stall_l1i += latency
            stall += latency
            mi += 1
        fc = flush if flush_list[s] else 0.0
        clock += stall + fc + q_list[s]
        if li < n_l1d and l1d_blocks[li] == s:
            dstall = 0.0
            for _ in range(l1d_counts[li]):
                latency = noc_request(clock) + memory_extra
                l1d_misses += 1
                l1d_fill += latency
                dstall += latency * exposure
            clock += dstall
            li += 1
        ptr = s + 1
    clock = _advance(clock, addend, addend_list, ptr, n, buf)

    stats.cycles = clock
    stats.conditional_branches = int(cond_prefix[n])
    stats.dir_mispredicts = int(dir_prefix[n])
    stats.target_mispredicts = int(tgt_prefix[n])
    stats.btb_misses = int(btbm_prefix[n])
    stats.stall_dir_flush = float(int(dir_prefix[n]) * flush)
    stats.stall_target_flush = float(int(tgt_prefix[n]) * flush)
    stats.stall_btb_flush = float(int(btbf_prefix[n]) * flush)
    stats.blocks = n
    stats.instructions = int(instr_prefix[n])
    stats.l1i_demand_accesses = int(access_prefix[n])
    stats.l1i_demand_misses = n_mem
    stats.llc_requests = n_mem
    stats.stall_l1i = stall_l1i
    stats.l1d_misses = l1d_misses
    stats.l1d_fill_cycles = l1d_fill
    return stats, snapshot, warmup


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def simulate_columnar(trace: Trace, scheme: Scheme,
                      params: Optional[MicroarchParams] = None,
                      predictor=None,
                      l1d_misses_per_kinstr: float = 10.0,
                      warmup_fraction: float = 0.1) -> SimulationResult:
    """Columnar replay of one cell; same contract as
    :func:`repro.core.frontend.simulate`, bit-identical output."""
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError("warmup_fraction must be in [0, 1)")
    if not supports(scheme, predictor):
        raise SimulationError(
            f"columnar engine cannot replay scheme {scheme.name!r}; "
            f"use the interpreter engine")
    params = params if params is not None else MicroarchParams()
    mode = "ideal" if scheme.ideal else "demand"
    # The same sanctioned observability hook the interpreter uses
    # (DESIGN.md Section 13): a no-op context unless telemetry is on,
    # never anything that can change engine output.
    # repro: allow[RPR002] -- read-only phase timing; off by default
    from repro.obs.profile import engine_phase
    with engine_phase(f"columnar.{mode}", scheme=scheme.name,
                      blocks=len(trace)):
        if scheme.ideal:
            stats, snapshot, warmup = _run_ideal(
                trace, params, l1d_misses_per_kinstr, warmup_fraction)
        else:
            stats, snapshot, warmup = _run_demand(
                trace, scheme, params, l1d_misses_per_kinstr,
                warmup_fraction)
        if warmup == 0 or snapshot is None:
            measured = stats.snapshot()
        else:
            measured = stats.delta_from(snapshot)
        if measured.instructions <= 0:
            raise SimulationError(
                "measured window contains no instructions")
    return SimulationResult(scheme=scheme.name, stats=measured)
