"""Figure 11: cycles to fill an L1-D miss vs spatial-footprint format.

Over-prefetching (Entire Region, 5-Blocks) increases on-chip network
load, which inflates the effective LLC access latency seen by *data*
misses — the collateral-damage experiment of Section 6.3.
"""

from __future__ import annotations

from repro.experiments.common import (
    FOOTPRINT_LABELS,
    footprint_variant_config,
    workload_grid,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.spec import run_grid_spec

VARIANTS = ("8_bit_vector", "entire_region", "5_blocks")

SPEC = workload_grid(
    experiment_id="figure11",
    title="Figure 11: cycles to fill an L1-D miss",
    variants=tuple(
        (FOOTPRINT_LABELS[v], "shotgun", footprint_variant_config(v))
        for v in VARIANTS
    ),
    metric="l1d_fill_latency",
    summary="avg",
    summary_label="Avg",
    value_format="{:.1f}",
    notes=("Shape target: 8-bit vector lowest; Entire Region and "
           "5-Blocks inflate data fill latency via useless prefetch "
           "traffic, most visibly on DB2/Streaming."),
)


def run(n_blocks: int = 60_000) -> ExperimentResult:
    """Average L1-D miss fill latency under each footprint mechanism."""
    return run_grid_spec(SPEC, n_blocks=n_blocks)
