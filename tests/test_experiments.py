"""Tests for the experiment layer: registry, reporting, tiny runs."""

import pytest

from repro.config.schemes import shotgun_storage_bits, ubtb_entry_bits
from repro.errors import ExperimentError
from repro.experiments.common import (
    FOOTPRINT_VARIANTS,
    budget_configs,
    cbtb_variant_config,
    footprint_variant_config,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.reporting import ExperimentResult, format_table


class TestRegistry:
    def test_every_paper_result_registered(self):
        expected = {"table1", "figure1", "figure3", "figure4", "figure6",
                    "figure7", "figure8", "figure9", "figure10",
                    "figure11", "figure12", "figure13", "colocation",
                    "frontier"}
        assert set(EXPERIMENTS) == expected

    def test_lookup(self):
        assert get_experiment("FIGURE7") is EXPERIMENTS["figure7"]
        with pytest.raises(ExperimentError):
            get_experiment("figure99")

    def test_every_experiment_declares_a_spec(self):
        from repro.experiments.registry import get_spec
        from repro.experiments.spec import GridSpec, TableSpec
        for experiment_id in EXPERIMENTS:
            spec = get_spec(experiment_id)
            assert isinstance(spec, (GridSpec, TableSpec))
            assert spec.experiment_id == experiment_id

    def test_descriptions_cover_registry(self):
        from repro.experiments.registry import DESCRIPTIONS
        assert set(DESCRIPTIONS) == set(EXPERIMENTS)
        assert all(DESCRIPTIONS.values())


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["", "a"], [["row", "1.0"], ["r2", "22.0"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("a")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ExperimentError):
            format_table(["a", "b"], [["only-one"]])

    def test_result_accessors(self):
        result = ExperimentResult("x", "Title", columns=["A", "B"])
        result.add_row("w1", [1.0, 2.0])
        result.set_summary("Avg", [1.0, 2.0])
        assert result.column("B") == [2.0]
        assert result.value("w1", "A") == 1.0
        rendered = result.render()
        assert "Title" in rendered and "Avg" in rendered

    def test_result_rejects_bad_width(self):
        result = ExperimentResult("x", "T", columns=["A"])
        with pytest.raises(ExperimentError):
            result.add_row("w", [1.0, 2.0])

    def test_missing_row_or_column(self):
        result = ExperimentResult("x", "T", columns=["A"])
        result.add_row("w", [1.0])
        with pytest.raises(ExperimentError):
            result.column("Z")
        with pytest.raises(ExperimentError):
            result.value("nope", "A")


class TestVariantConfigs:
    def test_all_footprint_variants_buildable(self):
        for variant in FOOTPRINT_VARIANTS:
            config = footprint_variant_config(variant)
            assert config.name == "shotgun"

    def test_metadata_free_variants_get_more_ubtb_entries(self):
        grown = footprint_variant_config("no_bit_vector")
        reference = footprint_variant_config("8_bit_vector")
        assert grown.shotgun_sizes.ubtb_entries \
            > reference.shotgun_sizes.ubtb_entries

    def test_no_bit_vector_stays_on_budget(self):
        grown = footprint_variant_config("no_bit_vector")
        reference = footprint_variant_config("8_bit_vector")
        assert (grown.shotgun_sizes.ubtb_entries * ubtb_entry_bits(0)
                <= reference.shotgun_sizes.ubtb_entries
                * ubtb_entry_bits(8))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ExperimentError):
            footprint_variant_config("17_bit_vector")

    def test_cbtb_variant(self):
        config = cbtb_variant_config(64)
        assert config.shotgun_sizes.cbtb_entries == 64

    def test_budget_configs_at_equal_storage(self):
        configs = budget_configs(1024)
        assert configs["boomerang"].btb_entries == 1024
        shotgun_bits = shotgun_storage_bits(
            configs["shotgun"].shotgun_sizes, 8
        )
        assert shotgun_bits <= 1024 * 93 * 1.03


class TestTinyExperimentRun:
    """table1 end-to-end on a reduced trace (fast smoke test)."""

    def test_table1_runs(self):
        from repro.experiments import table1
        result = table1.run(n_blocks=4000)
        assert len(result.rows) == 6
        for _, values in result.rows:
            assert values[0] >= 0.0
