"""Tests for the declarative design-space layer (repro.explore.space)."""

from __future__ import annotations

import pytest

from repro.config import MicroarchParams, SchemeConfig
from repro.errors import ConfigError, ExperimentError
from repro.experiments.common import budget_configs
from repro.experiments.spec import RunSpec, transform_spec
from repro.explore.space import (
    BTB_BUDGET_SPACE,
    Dimension,
    ParamSpace,
    apply_axis,
    get_space,
    point_dict,
)


class TestTransformSpecHook:
    def test_params_override_resolves_defaults(self):
        spec = transform_spec(RunSpec(workload="nutch", scheme="shotgun"),
                              params={"ftq_size": 64})
        assert spec.params == MicroarchParams(ftq_size=64)
        assert spec.config == SchemeConfig(name="shotgun")
        assert spec.n_blocks is None  # placeholder preserved

    def test_scheme_rename_renames_config(self):
        spec = transform_spec(RunSpec(workload="nutch", scheme="shotgun"),
                              scheme="Boomerang",
                              config={"btb_entries": 512})
        assert spec.scheme == "boomerang"
        assert spec.config.name == "boomerang"
        assert spec.config.btb_entries == 512

    def test_invalid_value_raises_at_transform_time(self):
        with pytest.raises(ConfigError):
            transform_spec(RunSpec(workload="nutch", scheme="shotgun"),
                           params={"ftq_size": -1})

    def test_existing_config_fields_survive(self):
        base = transform_spec(RunSpec(workload="nutch", scheme="shotgun"),
                              config={"footprint_bits": 32})
        both = transform_spec(base, params={"ftq_size": 16})
        assert both.config.footprint_bits == 32
        assert both.params.ftq_size == 16


class TestDimensionValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ExperimentError, match="unknown axis"):
            Dimension("warp_drive", (1, 2))

    def test_unknown_params_field_rejected(self):
        with pytest.raises(ExperimentError, match="MicroarchParams"):
            Dimension("params:warp_factor", (1,))

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ExperimentError, match="SchemeConfig"):
            Dimension("config:warp_factor", (1,))

    def test_generic_axes_accepted(self):
        Dimension("params:memory_latency", (60, 90))
        Dimension("config:confluence_stream_lookahead", (6, 12))

    def test_empty_and_duplicate_values_rejected(self):
        with pytest.raises(ExperimentError, match="no values"):
            Dimension("ftq_size", ())
        with pytest.raises(ExperimentError, match="repeats"):
            Dimension("ftq_size", (16, 16))

    def test_json_list_values_coerced_to_tuples(self):
        """JSON space files can only express structured values as
        lists; they must become hashable tuples, not crash."""
        dim = Dimension("config:shotgun_sizes",
                        ([1536, 128, 512], [3072, 256, 1024]))
        assert dim.values == ((1536, 128, 512), (3072, 256, 1024))

    def test_unhashable_values_rejected_cleanly(self):
        with pytest.raises(ExperimentError, match="hashable"):
            Dimension("config:shotgun_sizes", ({"ubtb": 1536},))


@pytest.fixture
def small_space():
    return ParamSpace(
        name="small",
        dimensions=(
            Dimension("scheme", ("boomerang", "shotgun")),
            Dimension("btb_entries", (512, 1024, 2048)),
        ),
        workloads=("nutch",),
    )


class TestPointEnumeration:
    def test_size_and_lexicographic_order(self, small_space):
        assert small_space.size() == 6
        points = list(small_space.iter_points())
        assert len(points) == 6
        assert points[0] == (("scheme", "boomerang"), ("btb_entries", 512))
        assert points[2] == (("scheme", "boomerang"), ("btb_entries", 2048))
        assert points[3] == (("scheme", "shotgun"), ("btb_entries", 512))
        assert points == [small_space.point_at(i) for i in range(6)]

    def test_point_at_bounds(self, small_space):
        with pytest.raises(ExperimentError):
            small_space.point_at(6)
        with pytest.raises(ExperimentError):
            small_space.point_at(-1)

    def test_neighbors_are_single_coordinate_moves(self, small_space):
        point = small_space.point_at(4)  # shotgun, 1024
        neighbors = small_space.neighbors(point)
        assert (("scheme", "boomerang"), ("btb_entries", 1024)) in neighbors
        assert (("scheme", "shotgun"), ("btb_entries", 512)) in neighbors
        assert (("scheme", "shotgun"), ("btb_entries", 2048)) in neighbors
        assert len(neighbors) == 3
        # Corner point has fewer neighbours.
        assert len(small_space.neighbors(small_space.point_at(0))) == 2

    def test_validation(self):
        with pytest.raises(ExperimentError, match="no dimensions"):
            ParamSpace(name="x", dimensions=(), workloads=("nutch",))
        with pytest.raises(ExperimentError, match="no workloads"):
            ParamSpace(name="x",
                       dimensions=(Dimension("ftq_size", (16,)),),
                       workloads=())
        with pytest.raises(ExperimentError, match="repeats dimension"):
            ParamSpace(name="x",
                       dimensions=(Dimension("ftq_size", (16,)),
                                   Dimension("ftq_size", (32,))),
                       workloads=("nutch",))


class TestCellExpansion:
    def test_btb_axis_matches_figure13_configs(self, small_space):
        """The explore axis must build the exact Figure 13 configs, so
        explore points share cache entries with the figure's cells."""
        for budget in (512, 1024, 2048):
            reference = budget_configs(budget)
            for scheme in ("boomerang", "shotgun"):
                point = (("scheme", scheme), ("btb_entries", budget))
                (cell, base), = small_space.cell_specs(point, 3000)
                assert cell.config == reference[scheme]
                assert cell.scheme == scheme
                assert cell.n_blocks == 3000
                assert base.scheme == "baseline"

    def test_scheme_axis_applies_before_dependent_axes(self):
        """btb_entries must see the point's scheme even when the scheme
        dimension is declared after it."""
        space = ParamSpace(
            name="reordered",
            dimensions=(
                Dimension("btb_entries", (1024,)),
                Dimension("scheme", ("shotgun",)),
            ),
            workloads=("nutch",),
        )
        (cell, _), = space.cell_specs(space.point_at(0), 2000)
        assert cell.config == budget_configs(1024)["shotgun"]

    def test_baseline_inherits_machine_params_only(self):
        space = ParamSpace(
            name="machine",
            dimensions=(Dimension("l1i_kb", (16,)),
                        Dimension("footprint_bits", (32,))),
            workloads=("nutch",),
        )
        (cell, base), = space.cell_specs(space.point_at(0), 2000)
        assert cell.params.l1i_bytes == 16 * 1024
        assert base.params.l1i_bytes == 16 * 1024
        assert cell.config.footprint_bits == 32
        assert base.config == SchemeConfig(name="baseline")

    def test_generic_axes_reach_any_field(self):
        spec = apply_axis(RunSpec(workload="nutch", scheme="confluence"),
                          "config:confluence_stream_lookahead", 6)
        assert spec.config.confluence_stream_lookahead == 6
        spec = apply_axis(spec, "params:memory_latency", 120)
        assert spec.params.memory_latency == 120

    def test_footprint_zero_selects_no_vector_mode(self):
        spec = apply_axis(RunSpec(workload="nutch", scheme="shotgun"),
                          "footprint_bits", 0)
        assert spec.config.footprint_mode == "none"
        assert spec.config.footprint_bits == 0

    def test_one_pair_per_workload(self):
        space = ParamSpace(
            name="two",
            dimensions=(Dimension("ftq_size", (16,)),),
            workloads=("nutch", "db2"),
        )
        pairs = space.cell_specs(space.point_at(0), 2000)
        assert [cell.workload for cell, _ in pairs] == ["nutch", "db2"]


class TestSerialisationAndRegistry:
    def test_dict_round_trip(self, small_space):
        rebuilt = ParamSpace.from_dict(small_space.to_dict())
        assert rebuilt == small_space

    def test_registered_spaces_resolve(self):
        assert get_space("btb_budget") is BTB_BUDGET_SPACE
        assert get_space("FRONTEND").name == "frontend"
        with pytest.raises(ExperimentError, match="unknown space"):
            get_space("nope")

    def test_point_dict(self, small_space):
        assert point_dict(small_space.point_at(5)) == {
            "scheme": "shotgun", "btb_entries": 2048,
        }
