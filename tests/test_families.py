"""Tests for the pluggable workload-family registry."""

from __future__ import annotations

import pytest

from repro.cfg.generator import GeneratorParams
from repro.errors import ConfigError
from repro.workloads.families import FAMILIES, FAMILY_NAMES
from repro.workloads.profiles import (
    WORKLOAD_NAMES,
    WorkloadProfile,
    build_program,
    build_trace,
    get_profile,
    iter_profiles,
    register_profile,
    registered_workloads,
)

TINY = GeneratorParams(n_functions=60, n_layers=4, n_roots=4,
                       median_blocks=6.0, seed=91)


@pytest.fixture
def scratch_registry():
    """Restore the registry (and evicted caches) after a test mutates it."""
    from repro.workloads import profiles
    saved = dict(profiles._PROFILES)
    yield
    profiles._PROFILES.clear()
    profiles._PROFILES.update(saved)
    profiles.clear_caches()


class TestRegistry:
    def test_paper_suite_and_families_registered(self):
        names = registered_workloads()
        assert names[:len(WORKLOAD_NAMES)] == WORKLOAD_NAMES
        for family in FAMILY_NAMES:
            assert family in names

    def test_suite_tags(self):
        for name in WORKLOAD_NAMES:
            assert get_profile(name).suite == "table2"
        for name in FAMILY_NAMES:
            assert get_profile(name).suite == "synthetic"

    def test_iter_profiles_matches_names(self):
        assert tuple(p.name for p in iter_profiles()) \
            == registered_workloads()

    def test_duplicate_registration_rejected(self, scratch_registry):
        with pytest.raises(ConfigError):
            register_profile(WorkloadProfile(
                name="nutch", description="imposter", gen_params=TINY,
            ))

    def test_registration_is_case_normalised(self, scratch_registry):
        profile = register_profile(WorkloadProfile(
            name="MyCustom", description="custom", gen_params=TINY,
        ))
        assert profile.name == "mycustom"
        assert get_profile("MYCUSTOM") is profile
        assert "mycustom" in registered_workloads()

    def test_replace_evicts_sweep_result_memo(self, scratch_registry,
                                              tmp_path, monkeypatch):
        """Re-registering a name must not serve stale in-process results."""
        from repro.core import sweep
        from repro.experiments.spec import RunSpec
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        sweep.clear_result_cache()
        register_profile(WorkloadProfile(
            name="restaged", description="v1", gen_params=TINY,
        ))
        spec = RunSpec(workload="restaged", scheme="baseline",
                       n_blocks=400)
        first = sweep.run_spec(spec)
        register_profile(WorkloadProfile(
            name="restaged", description="v2",
            gen_params=GeneratorParams(n_functions=240, n_layers=5,
                                       n_roots=6, seed=94),
        ), replace=True)
        second = sweep.run_spec(spec)
        assert second is not first
        assert second.stats != first.stats
        sweep.clear_result_cache()

    def test_replace_evicts_memoised_artefacts(self, scratch_registry):
        register_profile(WorkloadProfile(
            name="mutable", description="v1", gen_params=TINY,
        ))
        first = build_program("mutable")
        first_trace = build_trace("mutable", 500)
        register_profile(WorkloadProfile(
            name="mutable", description="v2",
            gen_params=GeneratorParams(n_functions=120, n_layers=4,
                                       n_roots=4, seed=92),
        ), replace=True)
        assert build_program("mutable") is not first
        assert build_trace("mutable", 500) is not first_trace

    def test_registered_family_flows_through_runspec(self, scratch_registry):
        from repro.experiments.spec import RunSpec
        register_profile(WorkloadProfile(
            name="customflow", description="custom", gen_params=TINY,
        ))
        spec = RunSpec(workload="customflow", scheme="baseline",
                       n_blocks=400)
        assert spec.disk_key()  # resolvable without error

    def test_profile_content_feeds_disk_keys(self, scratch_registry):
        """Same name, different generator params -> different cache keys."""
        from repro.experiments.spec import RunSpec
        register_profile(WorkloadProfile(
            name="keyed", description="v1", gen_params=TINY,
        ))
        spec = RunSpec(workload="keyed", scheme="baseline", n_blocks=400)
        key_v1 = spec.disk_key()
        assert key_v1 == spec.disk_key()  # stable
        register_profile(WorkloadProfile(
            name="keyed", description="v2",
            gen_params=GeneratorParams(n_functions=80, n_layers=4,
                                       n_roots=4, seed=93),
        ), replace=True)
        assert spec.disk_key() != key_v1


class TestFamilies:
    def test_five_families_shipped(self):
        assert len(FAMILIES) == 5
        assert FAMILY_NAMES == ("microservice", "jit", "gc", "kernelio",
                                "flatstream")

    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_family_builds_a_trace(self, name):
        trace = build_trace(name, 800)
        assert len(trace) == 800
        assert trace.instruction_count > 0

    def test_families_push_distinct_axes(self):
        table2_max_indirect = max(
            get_profile(n).gen_params.indirect_fraction
            for n in WORKLOAD_NAMES)
        assert get_profile("jit").gen_params.indirect_fraction \
            > 2 * table2_max_indirect
        table2_max_layers = max(
            get_profile(n).gen_params.n_layers for n in WORKLOAD_NAMES)
        assert get_profile("microservice").gen_params.n_layers \
            > table2_max_layers
        table2_max_trap = max(
            get_profile(n).gen_params.trap_fraction
            for n in WORKLOAD_NAMES)
        assert get_profile("kernelio").gen_params.trap_fraction \
            > 2 * table2_max_trap
        assert get_profile("flatstream").gen_params.n_functions < min(
            get_profile(n).gen_params.n_functions for n in WORKLOAD_NAMES)

    def test_paper_figure_rows_unchanged(self):
        """Figure experiments must not grow rows when families register."""
        from repro.experiments import figure7
        assert len(figure7.SPEC.cells) == 3 * len(WORKLOAD_NAMES)
