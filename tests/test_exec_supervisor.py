"""Tests for supervised execution: retries, timeouts, quarantine,
degradation — driven by the deterministic fault-injection harness."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import diskcache, sweep
from repro.core.exec import supervisor as supervisor_module
from repro.core.exec.faults import FaultPlan, FaultRule
from repro.core.exec.journal import RunJournal
from repro.core.exec.supervisor import SupervisedBackend
from repro.core.sweep import clear_result_cache, run_specs, \
    simulation_meter
from repro.errors import ReproError
from repro.experiments.spec import RunSpec


#: Small, fast cells (sub-second each) the fault matrix permutes over.
CELLS = tuple(
    RunSpec(workload=workload, scheme=scheme, n_blocks=blocks)
    for workload, scheme, blocks in (
        ("nutch", "baseline", 400),
        ("nutch", "ideal", 400),
        ("streaming", "baseline", 600),
        ("streaming", "ideal", 600),
    )
)


def _fresh(tmp_path, monkeypatch):
    """Cold disk cache + empty memo + fast retry backoff."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_BACKOFF_BASE", "0.01")
    clear_result_cache()


def _rule(kind, spec, **kwargs):
    """An injection rule matching exactly one of our test cells."""
    return FaultRule(kind=kind, workload=spec.workload,
                     scheme=spec.scheme, n_blocks=spec.n_blocks,
                     seed=spec.seed, **kwargs)


_REFERENCE = {}


def _reference():
    """Fault-free serial stats for CELLS (cache-independent, memoised)."""
    if not _REFERENCE:
        results = run_specs(CELLS, backend="serial", use_cache=False)
        _REFERENCE.update(
            {spec: result.stats for spec, result in results.items()})
    return _REFERENCE


class _BrokenPool:
    def __init__(self, *args, **kwargs):
        raise OSError("injected: this pool type cannot start here")


class TestSupervisedBackendValidation:
    def test_unknown_policy(self):
        from repro.core.exec.backends import SerialBackend
        with pytest.raises(ReproError, match="on-error policy"):
            SupervisedBackend(SerialBackend(), on_error="explode")

    def test_negative_retries(self):
        from repro.core.exec.backends import SerialBackend
        with pytest.raises(ReproError, match="retries"):
            SupervisedBackend(SerialBackend(), retries=-1)

    def test_nonpositive_timeout(self):
        from repro.core.exec.backends import SerialBackend
        with pytest.raises(ReproError, match="timeout"):
            SupervisedBackend(SerialBackend(), unit_timeout=0)

    def test_run_specs_rejects_unknown_policy(self, tmp_path,
                                              monkeypatch):
        _fresh(tmp_path, monkeypatch)
        with pytest.raises(ReproError, match="on-error policy"):
            run_specs(CELLS[:1], backend="serial", on_error="explode")


class TestRetry:
    def test_transient_fault_heals_bit_identical(self, tmp_path,
                                                 monkeypatch):
        """One retry heals a once-firing fault; survivors match the
        fault-free serial reference byte for byte."""
        _fresh(tmp_path, monkeypatch)
        plan = FaultPlan(rules=(_rule("raise", CELLS[0], times=1),),
                        state_dir=str(tmp_path / "faults"))
        results = run_specs(CELLS, backend="serial", faults=plan,
                            retries=1)
        report = sweep.last_failures
        assert report is not None
        assert report.quarantined == 0
        assert report.retries >= 1
        reference = _reference()
        assert {spec: result.stats for spec, result in results.items()} \
            == reference
        clear_result_cache()

    def test_fail_policy_raises_after_retries_exhausted(self, tmp_path,
                                                        monkeypatch):
        _fresh(tmp_path, monkeypatch)
        plan = FaultPlan(rules=(_rule("raise", CELLS[0], times=None),),
                        state_dir=str(tmp_path / "faults"))
        with pytest.raises(ReproError, match="failed after"):
            run_specs(CELLS, backend="serial", faults=plan, retries=1)
        clear_result_cache()

    def test_backoff_schedule_is_seeded(self):
        import random
        from repro.core.exec.backends import SerialBackend
        backend = SupervisedBackend(SerialBackend(), retries=3, seed=11)
        first = [backend._backoff(a, random.Random(11))
                 for a in range(1, 4)]
        second = [backend._backoff(a, random.Random(11))
                  for a in range(1, 4)]
        assert first == second
        assert all(d <= backend.backoff_cap * 2 for d in first)


class TestQuarantine:
    def test_skip_quarantines_exactly_the_poison_cell(self, tmp_path,
                                                      monkeypatch):
        _fresh(tmp_path, monkeypatch)
        poison = CELLS[2]
        plan = FaultPlan(rules=(_rule("raise", poison, times=None),),
                        state_dir=str(tmp_path / "faults"))
        before = sweep.quarantines
        results = run_specs(CELLS, backend="serial", faults=plan,
                            retries=1, on_error="skip")
        assert sweep.quarantines - before == 1
        report = sweep.last_failures
        assert [f.spec for f in report.cells] == [poison.canonical()]
        assert report.cells[0].attempts[-1]["kind"] == "error"
        expected = {spec.canonical() for spec in CELLS} \
            - {poison.canonical()}
        assert set(results) == expected
        reference = _reference()
        for spec in expected:
            assert results[spec].stats == reference[spec]
        clear_result_cache()

    def test_split_isolates_poison_from_unit_mates(self, tmp_path,
                                                   monkeypatch):
        """A poison cell sharing a unit cannot take its mates down:
        the unit splits on failure and only the culprit quarantines."""
        _fresh(tmp_path, monkeypatch)
        specs = [RunSpec(workload="nutch", scheme="baseline",
                         n_blocks=400, seed=seed) for seed in range(8)]
        poison = specs[3]
        plan = FaultPlan(rules=(_rule("raise", poison, times=None),),
                        state_dir=str(tmp_path / "faults"))
        # One worker over 8 cells forces multi-cell units.
        results = run_specs(specs, backend="serial", max_workers=1,
                            faults=plan, on_error="skip")
        assert set(results) \
            == {s.canonical() for s in specs} - {poison.canonical()}
        report = sweep.last_failures
        assert report.quarantined == 1
        # The quarantine record carries the split's full history.
        assert len(report.cells[0].attempts) >= 2
        clear_result_cache()

    def test_timeout_quarantines_hung_cell(self, tmp_path, monkeypatch):
        """A hang is detected by the per-unit timeout, retried and
        quarantined; the other cells complete on the same run."""
        _fresh(tmp_path, monkeypatch)
        hung = CELLS[1]
        plan = FaultPlan(
            rules=(_rule("hang", hung, times=None, seconds=30.0),),
            state_dir=str(tmp_path / "faults"))
        results = run_specs(CELLS, backend="thread", max_workers=2,
                            faults=plan, retries=0, unit_timeout=1.0,
                            on_error="skip")
        assert set(results) \
            == {spec.canonical() for spec in CELLS} - {hung.canonical()}
        report = sweep.last_failures
        assert report.quarantined == 1
        assert report.cells[0].attempts[-1]["kind"] == "timeout"
        clear_result_cache()


class TestCollateralDamage:
    """Innocent units sharing a pool with a poison cell must not pay
    for it: a pool reset does not consume their retry budget, and the
    unit-timeout clock does not run while a unit waits for a worker."""

    def test_reset_does_not_consume_the_retry_budget(self):
        import random
        from collections import deque
        from repro.core.exec.backends import SerialBackend
        from repro.core.exec.chunking import WorkUnit
        from repro.core.exec.supervisor import _Attempt
        backend = SupervisedBackend(SerialBackend(), retries=1,
                                    on_error="skip")
        unit = WorkUnit(index=0, specs=(CELLS[0],), cost=400)
        queue = deque()
        rng = random.Random(0)
        att = _Attempt(unit=unit)
        # Arbitrarily many resets never advance the attempt counter...
        for _ in range(5):
            backend._fail_attempt(att, "reset", "pool reset", queue,
                                  0.0, rng)
            att = queue.pop()
            assert att.attempt == 1
        # ...while a real failure still burns budget and quarantines
        # once the retries are exhausted.
        backend._fail_attempt(att, "timeout", "hung", queue, 0.0, rng)
        att = queue.pop()
        assert att.attempt == 2
        backend._fail_attempt(att, "timeout", "hung", queue, 0.0, rng)
        assert not queue
        assert [f.spec for f in backend.report.cells] == [CELLS[0]]
        # The quarantine history still shows the collateral resets.
        kinds = [h["kind"] for h in backend.report.cells[0].attempts]
        assert kinds == ["reset"] * 5 + ["timeout", "timeout"]

    def test_hang_neighbours_survive_with_zero_retries(self, tmp_path,
                                                       monkeypatch):
        """Regression for two quarantine-by-association bugs: the unit
        deadline used to start at submit (queue wait behind a clogged
        pool expired innocents that never ran), and each pool reset
        charged bystanders an attempt.  With retries=0 — no budget to
        absorb either — every cell except the hang itself must still
        complete."""
        _fresh(tmp_path, monkeypatch)
        hung = CELLS[0]
        plan = FaultPlan(
            rules=(_rule("hang", hung, times=None, seconds=30.0),),
            state_dir=str(tmp_path / "faults"))
        results = run_specs(CELLS, backend="thread", max_workers=2,
                            faults=plan, retries=0, unit_timeout=1.0,
                            on_error="skip")
        assert set(results) \
            == {spec.canonical() for spec in CELLS} - {hung.canonical()}
        report = sweep.last_failures
        assert report.quarantined == 1
        assert report.cells[0].attempts[-1]["kind"] == "timeout"
        clear_result_cache()


class TestDegradation:
    def test_unbuildable_pools_degrade_to_serial_and_complete(
            self, tmp_path, monkeypatch):
        _fresh(tmp_path, monkeypatch)
        monkeypatch.setattr(supervisor_module, "ProcessPoolExecutor",
                            _BrokenPool)
        monkeypatch.setattr(supervisor_module, "ThreadPoolExecutor",
                            _BrokenPool)
        results = run_specs(CELLS, backend="process", max_workers=2,
                            on_error="degrade")
        report = sweep.last_failures
        assert report.degraded == [("process", "thread"),
                                   ("thread", "serial")]
        reference = _reference()
        assert {spec: result.stats for spec, result in results.items()} \
            == reference
        clear_result_cache()

    def test_fail_policy_forbids_degradation(self, tmp_path,
                                             monkeypatch):
        _fresh(tmp_path, monkeypatch)
        monkeypatch.setattr(supervisor_module, "ThreadPoolExecutor",
                            _BrokenPool)
        with pytest.raises(ReproError, match="unrecoverable"):
            run_specs(CELLS, backend="thread", max_workers=2,
                      retries=1, on_error="fail")
        clear_result_cache()


class TestResume:
    def test_resume_carries_quarantines_and_simulates_nothing(
            self, tmp_path, monkeypatch):
        _fresh(tmp_path, monkeypatch)
        poison = CELLS[0]
        plan = FaultPlan(rules=(_rule("raise", poison, times=None),),
                        state_dir=str(tmp_path / "faults"))
        journal = RunJournal(str(tmp_path / "journal.jsonl"))
        run_specs(CELLS, backend="serial", faults=plan, retries=1,
                  on_error="skip", journal=journal)
        assert len(journal.quarantined) == 1
        assert journal.complete

        # Resume: survivors come from the disk cache, the quarantined
        # cell is carried forward — zero simulations, zero retries.
        clear_result_cache()
        resumed = RunJournal(journal.path)
        with simulation_meter() as meter:
            results = run_specs(CELLS, backend="serial", retries=1,
                                on_error="skip", journal=resumed)
        assert meter.count == 0
        assert set(results) \
            == {spec.canonical() for spec in CELLS} - {poison.canonical()}
        report = sweep.last_failures
        assert report.quarantined == 1
        assert report.cells[0].carried
        clear_result_cache()

    def test_resume_under_fail_policy_refuses_carried_quarantine(
            self, tmp_path, monkeypatch):
        _fresh(tmp_path, monkeypatch)
        poison = CELLS[0]
        plan = FaultPlan(rules=(_rule("raise", poison, times=None),),
                        state_dir=str(tmp_path / "faults"))
        journal = RunJournal(str(tmp_path / "journal.jsonl"))
        run_specs(CELLS, backend="serial", faults=plan, retries=0,
                  on_error="skip", journal=journal)
        clear_result_cache()
        with pytest.raises(ReproError, match="previous invocation"):
            run_specs(CELLS, backend="serial",
                      journal=RunJournal(journal.path))
        clear_result_cache()


class TestEnvironmentPlumbing:
    def test_env_flags_route_through_supervisor(self, tmp_path,
                                                monkeypatch):
        _fresh(tmp_path, monkeypatch)
        poison = CELLS[3]
        plan = FaultPlan(rules=(_rule("raise", poison, times=None),),
                        state_dir=str(tmp_path / "faults"))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        monkeypatch.setenv("REPRO_RETRIES", "1")
        monkeypatch.setenv("REPRO_ON_ERROR", "skip")
        results = run_specs(CELLS, backend="serial")
        assert poison.canonical() not in results
        assert len(results) == len(CELLS) - 1
        clear_result_cache()

    def test_env_validation(self, tmp_path, monkeypatch):
        _fresh(tmp_path, monkeypatch)
        monkeypatch.setenv("REPRO_RETRIES", "nope")
        with pytest.raises(ReproError, match="REPRO_RETRIES"):
            run_specs(CELLS[:1], backend="serial")
        monkeypatch.delenv("REPRO_RETRIES")
        monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "-3")
        with pytest.raises(ReproError, match="REPRO_UNIT_TIMEOUT"):
            run_specs(CELLS[:1], backend="serial")


_matrix_counter = [0]


class TestFaultMatrix:
    """Property tests over randomised fault plans (the satellite's
    fault matrix): whatever the plan, survivors are bit-identical to a
    fault-free serial run, ``skip`` quarantines exactly the injected
    poison cells, and the degradation chain lands on serial and
    completes."""

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_matrix(self, data, tmp_path, monkeypatch):
        poison = data.draw(
            st.sets(st.sampled_from(CELLS), max_size=2), label="poison")
        transient = data.draw(
            st.sets(st.sampled_from(CELLS), max_size=2),
            label="transient") - poison
        degrade = data.draw(st.booleans(), label="degrade")

        _matrix_counter[0] += 1
        scratch = tmp_path / f"matrix{_matrix_counter[0]}"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(scratch / "cache"))
        monkeypatch.setenv("REPRO_BACKOFF_BASE", "0.01")
        clear_result_cache()

        rules = tuple(
            [_rule("raise", spec, times=None) for spec in sorted(
                poison, key=lambda s: (s.workload, s.scheme))]
            + [_rule("raise", spec, times=1) for spec in sorted(
                transient, key=lambda s: (s.workload, s.scheme))]
        )
        plan = FaultPlan(rules=rules, state_dir=str(scratch / "faults"))
        if degrade:
            monkeypatch.setattr(supervisor_module, "ThreadPoolExecutor",
                                _BrokenPool)
            backend, policy = "thread", "degrade"
        else:
            backend, policy = "serial", "skip"

        results = run_specs(CELLS, backend=backend, max_workers=2,
                            faults=plan, retries=1, on_error=policy)

        report = sweep.last_failures
        survivors = {spec.canonical() for spec in CELLS} \
            - {spec.canonical() for spec in poison}
        assert set(results) == survivors
        reference = _reference()
        for spec in survivors:
            assert results[spec].stats == reference[spec]

        if poison:
            assert {failure.spec for failure in report.cells} \
                == {spec.canonical() for spec in poison}
        if degrade:
            assert report.degraded[-1][1] == "serial"
        monkeypatch.setattr(supervisor_module, "ThreadPoolExecutor",
                            supervisor_module.ThreadPoolExecutor)
        clear_result_cache()


class TestAcceptance:
    """The PR's acceptance scenario: a cold-cache process sweep under a
    plan injecting crashes, a hang and a corrupted cache entry completes
    under ``--on-error degrade --retries 2``, quarantines only the
    poisoned cell, matches a fault-free serial run bit for bit, and a
    ``--resume`` re-run performs zero simulations."""

    SPECS = tuple(
        RunSpec(workload=workload, scheme=scheme, n_blocks=500)
        for workload in ("nutch", "streaming")
        for scheme in ("baseline", "ideal", "shotgun")
    )

    def test_chaos_sweep_completes_and_resumes_for_free(self, tmp_path,
                                                        monkeypatch):
        _fresh(tmp_path, monkeypatch)
        crash_cell = self.SPECS[1]      # nutch/ideal: dies twice, heals
        hang_cell = self.SPECS[3]       # streaming/baseline: poison
        corrupt_cell = self.SPECS[0]    # nutch/baseline: entry truncated
        plan = FaultPlan(
            rules=(
                _rule("crash", crash_cell, times=2),
                _rule("hang", hang_cell, times=None, seconds=5.0),
                _rule("corrupt", corrupt_cell, times=1),
            ),
            state_dir=str(tmp_path / "faults"),
        )
        journal = RunJournal(str(tmp_path / "journal.jsonl"))
        results = run_specs(self.SPECS, backend="process", max_workers=2,
                            faults=plan, retries=2, unit_timeout=1.5,
                            on_error="degrade", journal=journal)

        survivors = {spec.canonical() for spec in self.SPECS} \
            - {hang_cell.canonical()}
        assert set(results) == survivors
        assert journal.quarantined == {diskcache.spec_key(hang_cell)}
        report = sweep.last_failures
        assert [f.spec for f in report.cells] == [hang_cell.canonical()]

        # Bit-identity against a fault-free serial run on a cold cache.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ref-cache"))
        clear_result_cache()
        reference = run_specs(self.SPECS, backend="serial")
        for spec in survivors:
            assert results[spec].stats == reference[spec].stats

        # The corrupt-fault entry was healed at write time: the resumed
        # run is served entirely by cache + journal, zero simulations.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        clear_result_cache()
        resumed = RunJournal(journal.path)
        with simulation_meter() as meter:
            again = run_specs(self.SPECS, backend="process",
                              max_workers=2, faults=plan, retries=2,
                              unit_timeout=1.5, on_error="degrade",
                              journal=resumed)
        assert meter.count == 0
        assert set(again) == survivors
        for spec in survivors:
            assert again[spec].stats == reference[spec].stats
        assert resumed.complete
        clear_result_cache()
