"""Package-level tests: exports, errors, version."""

import pytest

import repro
from repro import errors


class TestExports:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_api(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_workload_names_export(self):
        assert "oracle" in repro.WORKLOAD_NAMES


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (errors.ConfigError, errors.ProgramError,
                    errors.TraceError, errors.SimulationError,
                    errors.ExperimentError):
            assert issubclass(exc, errors.ReproError)
            assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ConfigError("boom")


class TestSchemeRegistryConsistency:
    def test_scheme_names_match_keys(self, tiny_generated, params):
        from repro.prefetch import SCHEME_FACTORIES, build_scheme
        for key in SCHEME_FACTORIES:
            scheme = build_scheme(key, params, tiny_generated)
            assert scheme.name == key

    def test_runahead_schemes_have_fill_or_speculate(self, tiny_generated,
                                                     params):
        """Run-ahead schemes must define what to do on a BTB miss."""
        from repro.prefetch import SCHEME_FACTORIES, build_scheme
        from repro.prefetch.base import MissPolicy
        for key in SCHEME_FACTORIES:
            scheme = build_scheme(key, params, tiny_generated)
            if scheme.runahead:
                assert scheme.miss_policy in (
                    MissPolicy.SPECULATE_FALLTHROUGH,
                    MissPolicy.STALL_FILL,
                )
