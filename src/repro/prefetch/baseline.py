"""No-prefetch baseline and the ideal front-end.

The baseline is the denominator of every figure in the paper: a
conventional 2K-entry BTB, no FTQ run-ahead, demand-fetched L1-I.  BTB
misses on taken branches are discovered at execute and flush the pipeline;
L1-I misses stall for the full fill latency.

The ideal front-end (Figure 1) never misses in the L1-I or the BTB;
only direction mispredictions remain.
"""

from __future__ import annotations

from typing import Optional

from repro.isa import BranchKind
from repro.prefetch.base import LookupHit, MissPolicy, Scheme
from repro.uarch.btb import ConventionalBTB


class BaselineScheme(Scheme):
    """Conventional core front-end without any prefetching."""

    name = "baseline"
    runahead = False
    miss_policy = MissPolicy.FLUSH_AT_EXECUTE

    def __init__(self, btb_entries: int = 2048, btb_assoc: int = 4) -> None:
        self.btb = ConventionalBTB(entries=btb_entries, assoc=btb_assoc)

    def lookup(self, pc: int, now: float) -> Optional[LookupHit]:
        entry = self.btb.lookup(pc)
        if entry is None:
            return None
        return LookupHit(ninstr=entry.ninstr, kind=entry.kind,
                         target=entry.target, source="btb")

    def demand_fill(self, pc: int, ninstr: int, kind: BranchKind,
                    target: int, now: float) -> None:
        self.btb.insert_branch(pc, ninstr, kind, target)

    def storage_bits(self) -> int:
        return self.btb.storage_bits()


class IdealScheme(Scheme):
    """Perfect L1-I and BTB: the upper bound of front-end prefetching.

    The engine special-cases ``ideal`` schemes: every L1-I access hits and
    every branch is known with its correct target, so the only front-end
    stalls left are direction-misprediction flushes.
    """

    name = "ideal"
    runahead = False
    ideal = True
    miss_policy = MissPolicy.FLUSH_AT_EXECUTE
