"""Seed-revision engine snapshot used by the perf smoke benchmark."""
