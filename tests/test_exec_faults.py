"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.exec import faults
from repro.core.exec.faults import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    active_plan,
)
from repro.errors import ReproError
from repro.experiments.spec import RunSpec


def _spec(workload="nutch", scheme="baseline", n_blocks=500, seed=0):
    return RunSpec(workload=workload, scheme=scheme, n_blocks=n_blocks,
                   seed=seed)


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultRule(kind="explode")

    def test_probability_bounds(self):
        with pytest.raises(ReproError, match="probability"):
            FaultRule(kind="raise", probability=1.5)

    def test_times_floor(self):
        with pytest.raises(ReproError, match="times"):
            FaultRule(kind="raise", times=0)

    def test_matching_is_field_subset(self):
        rule = FaultRule(kind="raise", workload="nutch", scheme="shotgun")
        assert rule.matches(_spec(scheme="shotgun"))
        assert not rule.matches(_spec(scheme="baseline"))
        assert not rule.matches(_spec(workload="streaming",
                                      scheme="shotgun"))

    def test_empty_filter_matches_everything(self):
        rule = FaultRule(kind="delay")
        assert rule.matches(_spec())
        assert rule.matches(_spec(workload="streaming", scheme="ideal"))

    def test_n_blocks_and_seed_filters(self):
        rule = FaultRule(kind="raise", n_blocks=500, seed=3)
        assert rule.matches(_spec(n_blocks=500, seed=3))
        assert not rule.matches(_spec(n_blocks=500, seed=4))
        assert not rule.matches(_spec(n_blocks=600, seed=3))


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", workload="nutch", times=2),
                   FaultRule(kind="hang", probability=0.25,
                             seconds=1.5, times=None)),
            seed=7, state_dir=str(tmp_path),
        )
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt == plan

    def test_bad_json_rejected(self):
        with pytest.raises(ReproError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ReproError, match="must be an object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ReproError, match="bad fault rule"):
            FaultPlan.from_json('{"rules": [{"kind": "raise", "x": 1}]}')

    def test_raise_rule_fires_and_respects_times(self, tmp_path):
        plan = FaultPlan(rules=(FaultRule(kind="raise", times=2),),
                        state_dir=str(tmp_path))
        spec = _spec()
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.before_cell(spec)
        # Third attempt: the scoreboard is exhausted, the cell runs.
        plan.before_cell(spec)

    def test_times_scoreboard_is_per_cell(self, tmp_path):
        plan = FaultPlan(rules=(FaultRule(kind="raise", times=1),),
                        state_dir=str(tmp_path))
        with pytest.raises(InjectedFault):
            plan.before_cell(_spec(scheme="baseline"))
        # A different cell has its own count.
        with pytest.raises(InjectedFault):
            plan.before_cell(_spec(scheme="ideal"))
        plan.before_cell(_spec(scheme="baseline"))

    def test_scoreboard_shared_via_directory(self, tmp_path):
        """Two plan objects (stand-ins for two processes) share counts."""
        make = lambda: FaultPlan(  # noqa: E731 - local factory
            rules=(FaultRule(kind="raise", times=1),),
            state_dir=str(tmp_path))
        with pytest.raises(InjectedFault):
            make().before_cell(_spec())
        make().before_cell(_spec())  # already claimed by the "other side"

    def test_crash_in_process_raises_instead_of_exiting(self, tmp_path):
        plan = FaultPlan(rules=(FaultRule(kind="crash"),),
                        state_dir=str(tmp_path))
        assert not faults.in_worker()
        with pytest.raises(InjectedCrash):
            plan.before_cell(_spec())

    def test_probability_is_deterministic_per_cell(self, tmp_path):
        plan = FaultPlan(
            rules=(FaultRule(kind="raise", probability=0.5, times=None),),
            seed=3, state_dir=str(tmp_path))
        specs = [_spec(seed=i) for i in range(40)]

        def poisoned():
            hit = []
            for spec in specs:
                try:
                    plan.before_cell(spec)
                except InjectedFault:
                    hit.append(spec)
            return hit

        first = poisoned()
        assert first == poisoned()  # same plan -> same cells, any order
        assert 0 < len(first) < len(specs)

    def test_probability_depends_on_plan_seed(self, tmp_path):
        specs = [_spec(seed=i) for i in range(40)]

        def poisoned(seed):
            plan = FaultPlan(
                rules=(FaultRule(kind="raise", probability=0.5,
                                 times=None),),
                seed=seed, state_dir=str(tmp_path / str(seed)))
            hit = []
            for spec in specs:
                try:
                    plan.before_cell(spec)
                except InjectedFault:
                    hit.append(spec)
            return hit

        assert poisoned(1) != poisoned(2)

    def test_hang_cancel(self, tmp_path):
        import threading
        plan = FaultPlan(rules=(FaultRule(kind="hang", seconds=60.0),),
                        state_dir=str(tmp_path))
        outcome = []

        def hang():
            try:
                plan.before_cell(_spec())
            except InjectedFault as error:
                outcome.append(str(error))

        thread = threading.Thread(target=hang)
        thread.start()
        import time
        time.sleep(0.2)
        faults.cancel_hangs()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert "cancelled" in outcome[0]

    def test_corrupt_truncates_entry(self, tmp_path):
        entry = tmp_path / "entry.json"
        entry.write_text("x" * 100)
        plan = FaultPlan(rules=(FaultRule(kind="corrupt"),),
                        state_dir=str(tmp_path / "state"))
        plan.after_store(_spec(), str(entry))
        assert entry.stat().st_size == 50
        # The claim was consumed: a second store is left intact.
        entry.write_text("y" * 100)
        plan.after_store(_spec(), str(entry))
        assert entry.stat().st_size == 100


class TestActivation:
    def test_no_plan_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert active_plan() is None

    def test_env_inline_json(self, monkeypatch, tmp_path):
        plan = FaultPlan(rules=(FaultRule(kind="delay", seconds=0.01),),
                        state_dir=str(tmp_path))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        assert active_plan() == plan

    def test_env_file_path(self, monkeypatch, tmp_path):
        plan = FaultPlan(rules=(FaultRule(kind="raise", workload="x"),),
                        seed=9)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
        assert active_plan() == plan

    def test_env_missing_file_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "/no/such/plan.json")
        with pytest.raises(ReproError, match="cannot read fault plan"):
            active_plan()

    def test_activated_scopes_override_and_environment(self, monkeypatch,
                                                       tmp_path):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        plan = FaultPlan(rules=(FaultRule(kind="raise"),),
                        state_dir=str(tmp_path))
        with plan.activated():
            assert active_plan() == plan
            # Pool workers inherit the plan through the environment.
            inherited = FaultPlan.from_json(
                os.environ["REPRO_FAULT_PLAN"])
            assert inherited == plan
        assert active_plan() is None
        assert "REPRO_FAULT_PLAN" not in os.environ

    def test_env_json_round_trips_through_activation(self, tmp_path):
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", times=2),
                   FaultRule(kind="corrupt", scheme="shotgun")),
            seed=4, state_dir=str(tmp_path))
        payload = json.loads(plan.to_json())
        assert FaultPlan.from_dict(payload) == plan
