"""Quickstart: simulate Shotgun vs the no-prefetch baseline.

Builds the calibrated DB2 (TPC-C) workload, runs the no-prefetch
baseline and Shotgun through the front-end engine and reports the
paper's headline metrics: speedup and front-end stall-cycle coverage.

Run with::

    python examples/quickstart.py
"""

from repro import MicroarchParams, build_scheme, simulate
from repro.core.metrics import frontend_stall_coverage, speedup
from repro.workloads.profiles import build_program, build_trace, get_profile


def main() -> None:
    workload = "db2"
    profile = get_profile(workload)
    print(f"Workload: {profile.description}")

    # 1. Build the synthetic program and a reduced retire-order trace.
    generated = build_program(workload)
    trace = build_trace(workload, n_blocks=30_000)
    print(f"Program: {generated.program.nfunctions} functions, "
          f"{generated.program.footprint_bytes // 1024} KB of code")
    print(f"Trace: {len(trace)} basic blocks, "
          f"{trace.instruction_count} instructions")

    # 2. Simulate the no-prefetch baseline and Shotgun.
    params = MicroarchParams()
    results = {}
    for name in ("baseline", "shotgun"):
        scheme = build_scheme(name, params, generated)
        results[name] = simulate(
            trace, scheme, params=params,
            l1d_misses_per_kinstr=profile.l1d_misses_per_kinstr,
        )

    # 3. Report.
    base, shotgun = results["baseline"], results["shotgun"]
    print(f"\nBaseline: IPC {base.ipc:.2f}, "
          f"L1-I MPKI {base.l1i_mpki:.1f}, BTB MPKI {base.btb_mpki:.1f}")
    print(f"Shotgun:  IPC {shotgun.ipc:.2f}, "
          f"prefetch accuracy {shotgun.prefetch_accuracy:.0%}")
    print(f"\nSpeedup over baseline:      {speedup(base, shotgun):.3f}x")
    print(f"Front-end stall coverage:   "
          f"{frontend_stall_coverage(base, shotgun):.0%}")


if __name__ == "__main__":
    main()
