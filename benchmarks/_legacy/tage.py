# Vendored verbatim from the seed revision (ea25f9d) with imports
# rewritten to the _legacy siblings, so the perf smoke benchmark
# compares the new engine against the true pre-PR engine.
"""Branch direction predictors: TAGE (paper Table 3) and a bimodal fallback.

The TAGE implementation follows Seznec & Michaud's "A case for (partially)
tagged geometric history length branch prediction" [16]: a bimodal base
predictor plus tagged tables indexed by geometrically growing global
history lengths, with provider/alternate selection, useful counters and
allocate-on-mispredict.  Folded histories are maintained incrementally so
a prediction is O(number of tables).

Storage budget: with the default geometry (4K-entry bimodal, four
1K-entry tagged tables with 9-bit tags, 3-bit counters, 2-bit useful),
the predictor costs 1KB + 4 * 1.75KB = 8KB, matching Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError


class _FoldedHistory:
    """Incrementally folded global history (circular-shift register)."""

    def __init__(self, history_length: int, folded_length: int) -> None:
        self.history_length = history_length
        self.folded_length = folded_length
        self.value = 0
        self._out_shift = history_length % folded_length
        self._mask = (1 << folded_length) - 1

    def update(self, new_bit: int, dropped_bit: int) -> None:
        """Shift in *new_bit*, remove the influence of *dropped_bit*.

        Standard circular-shift-register folding (Michaud/Seznec): the
        bit shifted out of the fold wraps back to bit 0, and the history
        bit leaving the window is XOR-cancelled at its folded position
        ``history_length % folded_length``.
        """
        wrap = (self.value >> (self.folded_length - 1)) & 1
        value = ((self.value << 1) | new_bit) & self._mask
        value ^= wrap
        value ^= (dropped_bit << self._out_shift) & self._mask
        self.value = value


@dataclass
class _TaggedEntry:
    tag: int
    counter: int  # 3-bit signed [-4, 3]; >= 0 predicts taken
    useful: int   # 2-bit


class _TaggedTable:
    """One TAGE component: tagged, useful-managed, history-indexed."""

    def __init__(self, entries: int, tag_bits: int,
                 history_length: int) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self.history_length = history_length
        self._index_bits = entries.bit_length() - 1
        if (1 << self._index_bits) != entries:
            raise ConfigError("tagged table entries must be a power of two")
        self._table: List[Optional[_TaggedEntry]] = [None] * entries
        self.index_fold = _FoldedHistory(history_length, self._index_bits)
        self.tag_fold_a = _FoldedHistory(history_length, tag_bits)
        self.tag_fold_b = _FoldedHistory(history_length, tag_bits - 1)

    def index(self, pc: int) -> int:
        pc = pc >> 2
        return (pc ^ (pc >> self._index_bits)
                ^ self.index_fold.value) & (self.entries - 1)

    def tag(self, pc: int) -> int:
        pc = pc >> 2
        return (pc ^ self.tag_fold_a.value
                ^ (self.tag_fold_b.value << 1)) & ((1 << self.tag_bits) - 1)

    def get(self, pc: int) -> Optional[_TaggedEntry]:
        entry = self._table[self.index(pc)]
        if entry is not None and entry.tag == self.tag(pc):
            return entry
        return None

    def allocate(self, pc: int, taken: bool) -> bool:
        """Try to claim the slot for *pc*; fails if the victim is useful."""
        idx = self.index(pc)
        entry = self._table[idx]
        if entry is not None and entry.useful > 0:
            entry.useful -= 1
            return False
        self._table[idx] = _TaggedEntry(
            tag=self.tag(pc), counter=0 if taken else -1, useful=0
        )
        return True


@dataclass
class _Prediction:
    """Bookkeeping carried from predict() to update()."""

    taken: bool
    provider: int          # table index, -1 for bimodal
    provider_pred: bool
    alt_pred: bool
    entry: Optional[_TaggedEntry]


class TagePredictor:
    """TAGE with a 2-bit bimodal base (8KB default budget).

    The public interface is ``predict(pc) -> bool`` followed by
    ``update(pc, taken)`` for the same branch (in retirement order, as the
    trace-driven engine naturally does).
    """

    #: Geometric history lengths of the default 8KB configuration.
    DEFAULT_HISTORIES: Tuple[int, ...] = (8, 20, 50, 128)

    def __init__(self, bimodal_entries: int = 4096,
                 tagged_entries: int = 1024, tag_bits: int = 9,
                 histories: Tuple[int, ...] = DEFAULT_HISTORIES) -> None:
        if bimodal_entries <= 0 or tagged_entries <= 0:
            raise ConfigError("predictor table sizes must be positive")
        if list(histories) != sorted(histories):
            raise ConfigError("history lengths must be increasing")
        self._bimodal = [2] * bimodal_entries  # 2-bit, >=2 predicts taken
        self._bimodal_mask = bimodal_entries - 1
        if bimodal_entries & self._bimodal_mask:
            raise ConfigError("bimodal entries must be a power of two")
        self._tables = [
            _TaggedTable(tagged_entries, tag_bits, h) for h in histories
        ]
        self._max_history = histories[-1]
        self._history_bits = [0] * self._max_history
        self._history_pos = 0
        self._pending: Optional[Tuple[int, _Prediction]] = None
        self.predictions = 0
        self.mispredictions = 0

    # -- prediction ---------------------------------------------------

    def _bimodal_pred(self, pc: int) -> bool:
        return self._bimodal[(pc >> 2) & self._bimodal_mask] >= 2

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at *pc*."""
        bimodal_pred = self._bimodal_pred(pc)
        hits = []
        for i, table in enumerate(self._tables):
            candidate = table.get(pc)
            if candidate is not None:
                hits.append((i, candidate))
        if hits:
            provider, entry = hits[-1]
            provider_pred = entry.counter >= 0
            if len(hits) >= 2:
                alt_pred = hits[-2][1].counter >= 0
            else:
                alt_pred = bimodal_pred
        else:
            provider, entry = -1, None
            provider_pred = alt_pred = bimodal_pred
        prediction = _Prediction(
            taken=provider_pred, provider=provider,
            provider_pred=provider_pred, alt_pred=alt_pred, entry=entry,
        )
        self._pending = (pc, prediction)
        self.predictions += 1
        return prediction.taken

    # -- update -------------------------------------------------------

    @staticmethod
    def _bump(value: int, taken: bool, low: int, high: int) -> int:
        return min(high, value + 1) if taken else max(low, value - 1)

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome of the branch at *pc*.

        Must follow the ``predict`` call for the same pc (the engine
        predicts and resolves in trace order).
        """
        if self._pending is None or self._pending[0] != pc:
            # Cold update (e.g. a branch resolved without a prediction,
            # as happens on the baseline's BTB-miss path): train bimodal.
            idx = (pc >> 2) & self._bimodal_mask
            self._bimodal[idx] = self._bump(self._bimodal[idx], taken, 0, 3)
            self._push_history(taken)
            return
        _, pred = self._pending
        self._pending = None
        if pred.taken != taken:
            self.mispredictions += 1

        if pred.entry is not None:
            pred.entry.counter = self._bump(pred.entry.counter, taken, -4, 3)
            if pred.provider_pred != pred.alt_pred:
                pred.entry.useful = self._bump(
                    pred.entry.useful, pred.provider_pred == taken, 0, 3
                )
        else:
            idx = (pc >> 2) & self._bimodal_mask
            self._bimodal[idx] = self._bump(self._bimodal[idx], taken, 0, 3)

        # Allocate a longer-history entry on a misprediction.
        if pred.taken != taken and pred.provider < len(self._tables) - 1:
            for table in self._tables[pred.provider + 1:]:
                if table.allocate(pc, taken):
                    break

        self._push_history(taken)

    def _push_history(self, taken: bool) -> None:
        new_bit = 1 if taken else 0
        pos = self._history_pos
        history = self._history_bits
        max_history = self._max_history
        for table in self._tables:
            drop_pos = (pos - table.history_length) % max_history
            dropped = history[drop_pos]
            table.index_fold.update(new_bit, dropped)
            table.tag_fold_a.update(new_bit, dropped)
            table.tag_fold_b.update(new_bit, dropped)
        history[pos] = new_bit
        self._history_pos = (pos + 1) % max_history

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions

    def storage_bits(self) -> int:
        """Approximate storage: bimodal counters + tagged entries."""
        tagged_bits = sum(
            t.entries * (t.tag_bits + 3 + 2) for t in self._tables
        )
        return len(self._bimodal) * 2 + tagged_bits


class BimodalPredictor:
    """Plain 2-bit bimodal predictor (test baseline and ablations)."""

    def __init__(self, entries: int = 4096) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("bimodal entries must be a positive power of 2")
        self._table = [2] * entries
        self._mask = entries - 1
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        self.predictions += 1
        return self._table[(pc >> 2) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = (pc >> 2) & self._mask
        value = self._table[idx]
        predicted = value >= 2
        if predicted != taken:
            self.mispredictions += 1
        self._table[idx] = min(3, value + 1) if taken else max(0, value - 1)

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions
