"""Known-bad fixture tree: every analyzer rule fires somewhere in here."""
