"""Figure 4: dynamic branch coverage of the hottest static branches."""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult
from repro.workloads.analysis import branch_coverage_curve
from repro.workloads.profiles import build_trace

POINTS = (1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192)
WORKLOADS = ("oracle", "db2")


def run(n_blocks: int = 60_000) -> ExperimentResult:
    """All-branch vs unconditional-branch coverage curves (Oracle, DB2)."""
    result = ExperimentResult(
        experiment_id="figure4",
        title=("Figure 4: dynamic branch coverage vs hottest static "
               "branches"),
        columns=[f"{p // 1024}K" for p in POINTS],
        value_format="{:.2f}",
        notes=("Shape target: unconditional-branch curves saturate far "
               "earlier than all-branch curves; a 2K BTB covers well "
               "under 80% of all dynamic branches on Oracle but most of "
               "the unconditional working set."),
    )
    for workload in WORKLOADS:
        trace = build_trace(workload, n_blocks)
        _, all_cov = branch_coverage_curve(trace, POINTS,
                                           unconditional_only=False)
        _, unc_cov = branch_coverage_curve(trace, POINTS,
                                           unconditional_only=True)
        result.add_row(f"{workload.capitalize()} (all)", list(all_cov))
        result.add_row(f"{workload.capitalize()} (uncond)", list(unc_cov))
    return result
