"""The workload registry and the six calibrated Table 2 profiles.

Calibration strategy (paper suite)
----------------------------------

The paper characterises its workloads in three ways that we can target
directly with generator knobs:

* **Table 1** (BTB MPKI at 2K entries, no prefetch) orders the suite
  Oracle > DB2 > Apache > Zeus ~ Streaming > Nutch.  The dominant lever is
  the branch working set: the function count and the Zipf skew of callee
  popularity (flatter skew -> more live branches).
* **Figure 3** (intra-region spatial locality) requires ~90% of region
  accesses within 10 cache blocks of the entry point, which holds for all
  profiles because functions are small and conditional offsets short.
* **Figure 4** (branch working-set curves for Oracle/DB2) requires the
  unconditional working set to be far smaller than the total branch
  working set, which holds because conditional branches dominate block
  terminators.

OLTP workloads additionally get higher data-miss rates (deep B-tree and
buffer-pool traversals), which matters for the Figure 11 NoC-load
experiment.

The registry
------------

Profiles live in a pluggable registry: the six Table 2 workloads are
registered below, :mod:`repro.workloads.families` registers the
synthetic scenario-diversity families on import (see that module for the
family calibration rationale), and downstream users can
:func:`register_profile` their own.  Everything that resolves a workload
by name — trace/program builders, the RunSpec layer, the disk cache's
key material, the ``frontier`` experiment, ``python -m repro list
--workloads`` — goes through this registry, so a registered family
behaves exactly like a built-in one.
"""

from __future__ import annotations

# repro: allow-file[RPR004] -- registry + memo caches: registration happens at
# import time or in single-threaded test setup, and the build_* check-then-set
# races at worst recompute the same pure artefact before an identical write.

import sys
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, Tuple

from repro.cfg.generator import GeneratedProgram, GeneratorParams, \
    generate_program
from repro.errors import ConfigError
from repro.workloads.trace import Trace
from repro.workloads.tracegen import generate_trace

#: Paper ordering of the original workload suite (Tables 1-2, all
#: figures).  Deliberately static: the figure experiments reproduce the
#: paper's tables and must not grow rows when extra families register.
WORKLOAD_NAMES: Tuple[str, ...] = (
    "nutch", "streaming", "apache", "zeus", "oracle", "db2",
)


@dataclass(frozen=True)
class WorkloadProfile:
    """A named workload: generator parameters plus trace-time settings.

    Attributes:
        name: canonical lower-case workload name.
        description: one-line provenance/behaviour summary (the paper's
            Table 2 description for the original suite).
        gen_params: calibrated synthetic-program generator knobs.
        trace_seed: RNG seed of the reference trace.
        warmup_blocks: blocks executed before the measured window.
        l1d_misses_per_kinstr: synthetic L1-D miss rate, used by the
            NoC-load model for Figure 11.
        suite: registry grouping — ``"table2"`` for the paper suite,
            ``"synthetic"`` for the shipped scenario families,
            ``"custom"`` for user registrations.
    """

    name: str
    description: str
    gen_params: GeneratorParams
    trace_seed: int = 1
    warmup_blocks: int = 8_000
    l1d_misses_per_kinstr: float = 12.0
    suite: str = "custom"


# ---------------------------------------------------------------------------
# The registry.  Memoised programs/traces are keyed by workload name, so
# re-registering a name must evict its cached artefacts.
# ---------------------------------------------------------------------------

_PROFILES: Dict[str, WorkloadProfile] = {}
_PROGRAM_CACHE: Dict[str, GeneratedProgram] = {}
_TRACE_CACHE: Dict[Tuple[str, int, int], Trace] = {}


def register_profile(profile: WorkloadProfile,
                     replace: bool = False) -> WorkloadProfile:
    """Add *profile* to the workload registry (keyed by lower-case name).

    Registration order is preserved (and is the row order of registry
    sweeps such as the ``frontier`` experiment).  Re-registering an
    existing name requires ``replace=True`` and evicts the name's
    memoised program/trace artefacts, so the next build reflects the new
    parameters.  Returns the registered profile for chaining.
    """
    key = profile.name.lower()
    if key != profile.name:
        profile = _dc_replace(profile, name=key)
    if key in _PROFILES and not replace:
        raise ConfigError(
            f"workload {key!r} is already registered; pass replace=True "
            "to override it"
        )
    _PROFILES[key] = profile
    _PROGRAM_CACHE.pop(key, None)
    for cache_key in [k for k in _TRACE_CACHE if k[0] == key]:
        del _TRACE_CACHE[cache_key]
    # The sweep layer's result memo is keyed by canonical RunSpec, whose
    # workload component is the *name* — so a re-registration must evict
    # the name's results there too, or an in-process caller keeps
    # reading simulations of the old parameters.  Lazy sys.modules
    # lookup: sweep imports this module, not vice versa.
    sweep = sys.modules.get("repro.core.sweep")
    if sweep is not None:
        for spec in [s for s in sweep._RESULT_CACHE if s.workload == key]:
            del sweep._RESULT_CACHE[spec]
    return profile


def registered_workloads() -> Tuple[str, ...]:
    """Every registered workload name, in registration order."""
    return tuple(_PROFILES)


def iter_profiles() -> Tuple[WorkloadProfile, ...]:
    """Every registered profile, in registration order."""
    return tuple(_PROFILES.values())


def get_profile(name: str) -> WorkloadProfile:
    """Look up a workload profile by (case-insensitive) name."""
    key = name.lower()
    if key not in _PROFILES:
        raise ConfigError(
            f"unknown workload {name!r}; choose from "
            f"{registered_workloads()}"
        )
    return _PROFILES[key]


# ---------------------------------------------------------------------------
# Memoised builders: program generation and trace execution are pure
# functions of (profile, length, seed), so experiments share one copy.
# ---------------------------------------------------------------------------

def build_program(name: str) -> GeneratedProgram:
    """Generate (or fetch the cached) program for a workload."""
    key = name.lower()
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[key] = generate_program(get_profile(key).gen_params)
    return _PROGRAM_CACHE[key]


def build_trace(name: str, n_blocks: int, seed: int = 0) -> Trace:
    """Generate (or fetch the cached) reference trace for a workload.

    ``seed=0`` selects the profile's reference seed; other values derive
    independent streams for variance studies and sampled windows.
    """
    profile = get_profile(name)
    actual_seed = profile.trace_seed if seed == 0 else seed
    key = (name.lower(), n_blocks, actual_seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = generate_trace(
            build_program(name), n_blocks, seed=actual_seed,
            warmup_blocks=profile.warmup_blocks,
        )
    return _TRACE_CACHE[key]


def clear_caches() -> None:
    """Drop memoised programs and traces (used by tests)."""
    _PROGRAM_CACHE.clear()
    _TRACE_CACHE.clear()


# ---------------------------------------------------------------------------
# The paper suite (Table 2), registered in paper order.
# ---------------------------------------------------------------------------

register_profile(WorkloadProfile(
    name="nutch",
    description="Apache Nutch v1.2 web search (230 clients)",
    gen_params=GeneratorParams(
        n_functions=1600,
        n_layers=6,
        n_roots=12,
        median_blocks=8.0,
        sigma_blocks=0.6,
        zipf_callee=0.72,
        zipf_root=0.9,
        call_fraction=0.14,
        trap_fraction=0.012,
        cluster_fraction=0.35,
        indirect_fraction=0.08,
        indirect_fanout=4,
        seed=101,
    ),
    l1d_misses_per_kinstr=6.0,
    suite="table2",
))

register_profile(WorkloadProfile(
    name="streaming",
    description="Darwin Streaming Server 6.0.3 (7500 clients)",
    gen_params=GeneratorParams(
        n_functions=2300,
        n_layers=7,
        n_roots=18,
        median_blocks=9.0,
        sigma_blocks=0.65,
        zipf_callee=0.7,
        zipf_root=0.95,
        call_fraction=0.14,
        trap_fraction=0.016,
        cluster_fraction=0.35,
        indirect_fraction=0.10,
        indirect_fanout=4,
        seed=102,
    ),
    l1d_misses_per_kinstr=10.0,
    suite="table2",
))

register_profile(WorkloadProfile(
    name="apache",
    description="Apache HTTP Server v2.0 (SPECweb99, 16K connections)",
    gen_params=GeneratorParams(
        n_functions=3200,
        n_layers=8,
        n_roots=32,
        median_blocks=9.0,
        sigma_blocks=0.65,
        zipf_callee=0.65,
        zipf_root=1.0,
        call_fraction=0.135,
        trap_fraction=0.016,
        cluster_fraction=0.35,
        indirect_fraction=0.10,
        indirect_fanout=4,
        seed=103,
    ),
    l1d_misses_per_kinstr=8.0,
    suite="table2",
))

register_profile(WorkloadProfile(
    name="zeus",
    description="Zeus Web Server (SPECweb99, 16K connections)",
    gen_params=GeneratorParams(
        n_functions=2400,
        n_layers=7,
        n_roots=20,
        median_blocks=8.5,
        sigma_blocks=0.65,
        zipf_callee=0.7,
        zipf_root=1.1,
        call_fraction=0.13,
        trap_fraction=0.014,
        cluster_fraction=0.35,
        indirect_fraction=0.10,
        indirect_fanout=4,
        seed=104,
    ),
    l1d_misses_per_kinstr=8.0,
    suite="table2",
))

register_profile(WorkloadProfile(
    name="oracle",
    description="Oracle 10g Enterprise DB, TPC-C 100 warehouses",
    gen_params=GeneratorParams(
        n_functions=6000,
        n_layers=10,
        n_roots=48,
        median_blocks=10.0,
        sigma_blocks=0.7,
        zipf_callee=0.6,
        zipf_root=1.6,
        call_fraction=0.17,
        trap_fraction=0.018,
        cluster_fraction=0.35,
        indirect_fraction=0.12,
        indirect_fanout=5,
        seed=105,
    ),
    l1d_misses_per_kinstr=16.0,
    suite="table2",
))

register_profile(WorkloadProfile(
    name="db2",
    description="IBM DB2 v8 ESE, TPC-C 100 warehouses",
    gen_params=GeneratorParams(
        n_functions=4300,
        n_layers=9,
        n_roots=44,
        median_blocks=10.0,
        sigma_blocks=0.7,
        zipf_callee=0.6,
        zipf_root=1.05,
        call_fraction=0.14,
        trap_fraction=0.018,
        cluster_fraction=0.35,
        indirect_fraction=0.12,
        indirect_fanout=5,
        seed=106,
    ),
    l1d_misses_per_kinstr=15.0,
    suite="table2",
))


# Register the synthetic scenario families after the paper suite so any
# name-resolution path (builders, disk-cache key material, the CLI) sees
# a fully-populated registry regardless of which module imports first.
import repro.workloads.families  # noqa: E402,F401
