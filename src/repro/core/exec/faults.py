"""Deterministic, seeded fault injection for the execution layer.

The fault-tolerance machinery in :mod:`~repro.core.exec.supervisor`
exists for failures that are miserable to reproduce: a worker process
dying mid-unit, a cell hanging forever, a cache entry truncated by a
full disk.  This module makes those failures *injectable and
deterministic* so the retry/quarantine/degradation paths can be tested
like any other code.

A :class:`FaultPlan` is a seeded list of :class:`FaultRule` values.
Each rule names a fault ``kind`` and matches cells by their spec fields
(``workload``/``scheme``/``seed``/``n_blocks``; omitted fields match
everything) or by a deterministic per-cell ``probability``.  Kinds:

``raise``
    Raise :class:`InjectedFault` instead of simulating the cell.
``crash``
    Kill the executing worker: ``os._exit`` inside a process-pool
    worker (the parent sees a broken pool, exactly like a real crash);
    in-process execution raises :class:`InjectedCrash` instead — a
    test process must never kill itself.
``hang``
    Block for ``seconds`` (in small cancellable slices), then raise —
    the cell never completes.  The supervisor's per-unit timeout is
    what recovers from this; :func:`cancel_hangs` releases in-process
    hangs when a thread pool is abandoned.
``delay``
    Sleep ``seconds`` and then simulate normally (straggler injection).
``corrupt``
    After the cell's result is persisted, truncate the disk-cache
    entry in place — the bit-rot/truncation scenario the integrity
    layer (checksummed entries, ``cache verify``) must detect.

**Determinism across processes and retries.**  A rule fires at most
``times`` times *per cell*, counted in an on-disk scoreboard (atomic
``O_EXCL`` claim files under ``<state_dir>``), so "crash the first two
attempts, then succeed" holds even when every attempt runs in a
different worker process.  ``times: null`` means unlimited — a poison
cell that must end up quarantined.  ``probability`` rules hash
``(plan seed, rule index, cell identity)``, so the same plan poisons
the same cells regardless of execution order or backend.

Activation: the ``REPRO_FAULT_PLAN`` environment variable (a JSON file
path, or inline JSON starting with ``{``) reaches every process — pool
workers inherit the parent's environment — and ``run_specs(faults=...)``
scopes a plan to one call via :meth:`FaultPlan.activated`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import ReproError

_ENV_PLAN = "REPRO_FAULT_PLAN"

#: Fault kinds a rule may inject.
KINDS = ("raise", "crash", "hang", "delay", "corrupt")

#: Slice length for cancellable hang sleeps.
_HANG_SLICE = 0.05


class InjectedFault(RuntimeError):
    """A failure raised by an active :class:`FaultPlan` (not a bug)."""


class InjectedCrash(InjectedFault):
    """A crash fault fired outside a pool worker (in-process stand-in)."""


# -- Worker / hang bookkeeping ---------------------------------------------

#: True in process-pool workers (set by the pool initializer): a crash
#: fault may really ``os._exit`` there without killing the test runner.
_IS_WORKER = False

#: Bumped by :func:`cancel_hangs`; in-flight hangs notice and raise, so
#: an abandoned thread pool's stuck workers unwind promptly.
_hang_generation = 0
_hang_lock = threading.Lock()


def mark_worker() -> None:
    """Declare this process a pool worker (crash faults become real)."""
    global _IS_WORKER
    # repro: allow[RPR004] -- set once by the pool initializer before any task
    _IS_WORKER = True


def in_worker() -> bool:
    return _IS_WORKER


def cancel_hangs() -> None:
    """Release every in-flight injected hang (they raise immediately)."""
    global _hang_generation
    with _hang_lock:
        _hang_generation += 1


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: a fault kind plus its cell-matching filter.

    ``workload``/``scheme``/``seed``/``n_blocks`` are exact-match
    filters (None matches everything); ``probability`` additionally
    gates matching cells through a deterministic per-cell hash.
    ``times`` bounds how often the rule fires per cell (None =
    unlimited); ``seconds`` sizes hangs and delays.
    """

    kind: str
    workload: Optional[str] = None
    scheme: Optional[str] = None
    seed: Optional[int] = None
    n_blocks: Optional[int] = None
    probability: Optional[float] = None
    times: Optional[int] = 1
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}"
            )
        if self.probability is not None \
                and not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"fault probability must be in [0, 1], got "
                f"{self.probability}"
            )
        if self.times is not None and self.times < 1:
            raise ReproError(f"fault times must be >= 1, got {self.times}")

    def matches(self, spec: Any) -> bool:
        """Field-filter match (probability/times are applied separately)."""
        if self.workload is not None \
                and self.workload.lower() != str(spec.workload).lower():
            return False
        if self.scheme is not None \
                and self.scheme.lower() != str(spec.scheme).lower():
            return False
        if self.seed is not None and self.seed != getattr(spec, "seed", None):
            return False
        if self.n_blocks is not None \
                and self.n_blocks != getattr(spec, "n_blocks", None):
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        for name in ("workload", "scheme", "seed", "n_blocks",
                     "probability"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        payload["times"] = self.times
        payload["seconds"] = self.seconds
        return payload


def _cell_id(spec: Any) -> str:
    """Stable, filesystem-safe identity of one cell for the scoreboard."""
    material = (f"{spec.workload}|{spec.scheme}|"
                f"{getattr(spec, 'seed', '')}|"
                f"{getattr(spec, 'n_blocks', '')}")
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:20]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of injection rules."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    #: Scoreboard directory for ``times`` accounting (default: the
    #: ``fault-state`` subdirectory of the disk-cache root, so every
    #: process of a sweep shares it).
    state_dir: Optional[str] = None

    # -- Construction / serialisation ----------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        try:
            rules = tuple(FaultRule(**rule)
                          for rule in payload.get("rules", ()))
        except TypeError as error:
            raise ReproError(f"bad fault rule: {error}") from None
        return cls(rules=rules, seed=int(payload.get("seed", 0)),
                   state_dir=payload.get("state_dir"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ReproError(f"fault plan is not valid JSON: {error}") \
                from None
        if not isinstance(payload, dict):
            raise ReproError("fault plan JSON must be an object")
        return cls.from_dict(payload)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }
        if self.state_dir is not None:
            payload["state_dir"] = self.state_dir
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def activated(self) -> "_Activation":
        """``with plan.activated(): ...`` — scope this plan to a block."""
        return _Activation(self)

    # -- Firing decisions ----------------------------------------------

    def _state_dir(self) -> str:
        if self.state_dir:
            return self.state_dir
        from repro.core import diskcache
        return os.path.join(diskcache.cache_dir(), "fault-state")

    def _probability_fires(self, index: int, rule: FaultRule,
                           spec: Any) -> bool:
        material = f"{self.seed}|{index}|{_cell_id(spec)}"
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < (rule.probability or 0.0)

    def _claim(self, index: int, rule: FaultRule, spec: Any) -> bool:
        """Atomically claim one firing of *rule* for *spec*.

        The scoreboard is a set of ``O_CREAT|O_EXCL`` marker files, so
        the claim is race-free across worker processes and survives
        worker death — which is exactly when it matters: a crash
        fault's count must advance even though the worker that fired it
        never returns.
        """
        if rule.times is None:
            return True
        root = self._state_dir()
        try:
            os.makedirs(root, exist_ok=True)
        except OSError:
            return True  # no scoreboard: fire (fail-open is noisier)
        for attempt in range(rule.times):
            path = os.path.join(
                root, f"r{index}-{_cell_id(spec)}.{attempt}")
            try:
                os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
            except OSError:
                return True
        return False

    def _firing_rules(self, spec: Any,
                      kinds: Tuple[str, ...]) -> Iterable[Tuple[int,
                                                                FaultRule]]:
        for index, rule in enumerate(self.rules):
            if rule.kind not in kinds or not rule.matches(spec):
                continue
            if rule.probability is not None \
                    and not self._probability_fires(index, rule, spec):
                continue
            if self._claim(index, rule, spec):
                yield index, rule

    # -- Injection hooks (called from run_spec) ------------------------

    def before_cell(self, spec: Any) -> None:
        """Fire any matching pre-simulation fault for *spec*."""
        for index, rule in self._firing_rules(
                spec, ("delay", "hang", "crash", "raise")):
            if rule.kind == "delay":
                time.sleep(rule.seconds)
            elif rule.kind == "hang":
                self._hang(rule.seconds, spec)
            elif rule.kind == "crash":
                if in_worker():
                    os._exit(57)
                raise InjectedCrash(
                    f"injected crash (rule {index}) on "
                    f"{spec.workload}/{spec.scheme}"
                )
            else:
                raise InjectedFault(
                    f"injected fault (rule {index}) on "
                    f"{spec.workload}/{spec.scheme}"
                )

    def _hang(self, seconds: float, spec: Any) -> None:
        start = time.monotonic()
        generation = _hang_generation
        while time.monotonic() - start < seconds:
            if _hang_generation != generation:
                raise InjectedFault(
                    f"injected hang cancelled on "
                    f"{spec.workload}/{spec.scheme}"
                )
            time.sleep(min(_HANG_SLICE, seconds))
        raise InjectedFault(
            f"injected hang elapsed ({seconds}s) on "
            f"{spec.workload}/{spec.scheme}"
        )

    def after_store(self, spec: Any, entry_path: str) -> None:
        """Fire any matching ``corrupt`` fault on the cell's cache entry.

        Truncates the entry to half its size in place — invalid JSON
        with a plausible prefix, the classic full-disk/kill signature
        the checksummed read path must catch.
        """
        for _index, _rule in self._firing_rules(spec, ("corrupt",)):
            try:
                size = os.path.getsize(entry_path)
                with open(entry_path, "r+b") as handle:
                    handle.truncate(max(1, size // 2))
            except OSError:
                pass
            return


# -- Active-plan resolution -------------------------------------------------

#: Plan activated in-process (wins over the environment).
_active_override: Optional[FaultPlan] = None

#: Parse cache for environment-named plans, keyed by the raw env value.
_env_cache: Dict[str, Optional[FaultPlan]] = {}


def _load_env_plan(value: str) -> FaultPlan:
    text = value
    if not value.lstrip().startswith("{"):
        try:
            with open(value, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise ReproError(
                f"cannot read fault plan file {value!r}: {error}"
            ) from None
    return FaultPlan.from_json(text)


def active_plan() -> Optional[FaultPlan]:
    """The plan injection hooks consult (override, else environment)."""
    if _active_override is not None:
        return _active_override
    value = os.environ.get(_ENV_PLAN, "").strip()
    if not value:
        return None
    if value not in _env_cache:
        # repro: allow[RPR004] -- idempotent memo keyed by the env string
        _env_cache[value] = _load_env_plan(value)
    return _env_cache[value]


class _Activation:
    """Context manager scoping a plan (module override + environment)."""

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._saved_env: Optional[str] = None
        self._saved_override: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        global _active_override
        self._saved_override = _active_override
        self._saved_env = os.environ.get(_ENV_PLAN)
        # repro: allow[RPR004] -- chaos-test scoping, entered before any sweep
        _active_override = self._plan
        # Pool workers inherit the environment, not module globals.
        os.environ[_ENV_PLAN] = self._plan.to_json()
        return self._plan

    def __exit__(self, *exc_info) -> None:
        global _active_override
        # repro: allow[RPR004] -- chaos-test scoping, exited after the sweep
        _active_override = self._saved_override
        if self._saved_env is None:
            os.environ.pop(_ENV_PLAN, None)
        else:
            os.environ[_ENV_PLAN] = self._saved_env


def activated(plan: FaultPlan) -> _Activation:
    """``with activated(plan): ...`` — scope *plan* to a block."""
    return _Activation(plan)


__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "InjectedCrash",
    "KINDS",
    "active_plan",
    "activated",
    "cancel_hangs",
    "in_worker",
    "mark_worker",
]
