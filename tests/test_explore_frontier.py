"""Tests for objectives, the storage cost model and Pareto extraction."""

from __future__ import annotations

import pytest

from repro.config import MicroarchParams, SchemeConfig
from repro.config.schemes import conventional_btb_bits, \
    shotgun_budget_split
from repro.errors import ExperimentError
from repro.explore.frontier import (
    OBJECTIVES,
    EvaluatedPoint,
    dominates,
    frontend_storage_bits,
    pareto_frontier,
    resolve_objectives,
    scalar_score,
)

SPEEDUP_STORAGE = resolve_objectives(["speedup", "storage_bits"])


def ep(speedup: float, bits: float, tag: str = "p",
       blocks: int = 1000) -> EvaluatedPoint:
    return EvaluatedPoint(
        point=(("tag", tag),), n_blocks=blocks,
        objectives=(("speedup", speedup), ("storage_bits", bits)),
    )


class TestObjectives:
    def test_resolution_preserves_order_and_validates(self):
        objectives = resolve_objectives(["storage_bits", "speedup"])
        assert [o.name for o in objectives] == ["storage_bits", "speedup"]
        with pytest.raises(ExperimentError, match="unknown objective"):
            resolve_objectives(["speedup", "latency"])
        with pytest.raises(ExperimentError, match="at least one"):
            resolve_objectives([])
        with pytest.raises(ExperimentError, match="repeat"):
            resolve_objectives(["speedup", "SPEEDUP"])

    def test_signed_orientation(self):
        assert OBJECTIVES["speedup"].signed(1.2) == 1.2
        assert OBJECTIVES["storage_bits"].signed(100.0) == -100.0

    def test_unknown_objective_value_raises(self):
        with pytest.raises(ExperimentError, match="no objective"):
            ep(1.0, 1.0).value("ipc")


class TestDomination:
    def test_strictly_better_dominates(self):
        assert dominates(ep(1.3, 100), ep(1.2, 200), SPEEDUP_STORAGE)

    def test_tradeoff_points_do_not_dominate(self):
        fast = ep(1.3, 200)
        cheap = ep(1.2, 100)
        assert not dominates(fast, cheap, SPEEDUP_STORAGE)
        assert not dominates(cheap, fast, SPEEDUP_STORAGE)

    def test_equal_points_do_not_dominate(self):
        assert not dominates(ep(1.2, 100), ep(1.2, 100), SPEEDUP_STORAGE)

    def test_equal_on_one_better_on_other(self):
        assert dominates(ep(1.3, 100), ep(1.2, 100), SPEEDUP_STORAGE)


class TestParetoFrontier:
    def test_dominated_points_pruned(self):
        a, b = ep(1.3, 100, "a"), ep(1.2, 200, "b")
        frontier = pareto_frontier([a, b], SPEEDUP_STORAGE)
        assert frontier == [a]

    def test_tradeoff_curve_survives_sorted_best_first(self):
        points = [ep(1.1, 100, "cheap"), ep(1.3, 300, "fast"),
                  ep(1.2, 200, "mid"), ep(1.15, 250, "dominated")]
        frontier = pareto_frontier(points, SPEEDUP_STORAGE)
        assert [dict(p.point)["tag"] for p in frontier] == \
            ["fast", "mid", "cheap"]

    def test_highest_fidelity_represents_a_point(self):
        low = ep(1.5, 100, "x", blocks=500)   # optimistic low-fidelity
        high = ep(1.2, 100, "x", blocks=2000)
        other = ep(1.3, 100, "y", blocks=2000)
        frontier = pareto_frontier([low, other, high], SPEEDUP_STORAGE)
        # The 1.5 low-fidelity reading is superseded, so "y" wins.
        assert [dict(p.point)["tag"] for p in frontier] == ["y"]

    def test_ties_all_survive(self):
        a, b = ep(1.2, 100, "a"), ep(1.2, 100, "b")
        assert len(pareto_frontier([a, b], SPEEDUP_STORAGE)) == 2

    def test_requires_objectives(self):
        with pytest.raises(ExperimentError):
            pareto_frontier([ep(1.0, 1.0)], [])

    def test_scalar_score_is_lexicographic(self):
        primary = resolve_objectives(["speedup", "storage_bits"])
        assert scalar_score(ep(1.3, 999), primary) > \
            scalar_score(ep(1.2, 1), primary)
        assert scalar_score(ep(1.2, 1), primary) > \
            scalar_score(ep(1.2, 2), primary)


class TestStorageCostModel:
    def test_shotgun_reference_matches_conventional_budget(self):
        """Section 5.2: the reference Shotgun split spends about the same
        bits as the 2K-entry conventional BTB (within the paper's ~2.3%
        slack)."""
        params = MicroarchParams()
        shotgun = frontend_storage_bits(
            "shotgun", SchemeConfig(name="shotgun"), params)
        boomerang = frontend_storage_bits(
            "boomerang", SchemeConfig(name="boomerang"), params)
        assert abs(shotgun - boomerang) / boomerang < 0.03

    def test_monotone_in_btb_budget(self):
        params = MicroarchParams()
        costs = [
            frontend_storage_bits(
                "boomerang",
                SchemeConfig(name="boomerang", btb_entries=entries),
                params)
            for entries in (512, 1024, 2048, 4096)
        ]
        assert costs == sorted(costs)
        assert costs[0] > 512 * 93  # at least the BTB bits themselves

    def test_equal_storage_split_fits_budget(self):
        for entries in (512, 1024, 2048, 4096, 8192):
            sizes = shotgun_budget_split(entries)
            cost = frontend_storage_bits(
                "shotgun",
                SchemeConfig(name="shotgun", shotgun_sizes=sizes),
                MicroarchParams())
            budget = conventional_btb_bits(entries) \
                + MicroarchParams().frontend_buffer_bits()
            assert cost <= budget * 1.03

    def test_machine_buffers_contribute(self):
        small = frontend_storage_bits(
            "shotgun", SchemeConfig(name="shotgun"),
            MicroarchParams(ftq_size=16, l1i_prefetch_buffer=16))
        big = frontend_storage_bits(
            "shotgun", SchemeConfig(name="shotgun"),
            MicroarchParams(ftq_size=64, l1i_prefetch_buffer=128))
        assert big > small

    def test_confluence_pays_for_llc_metadata(self):
        params = MicroarchParams()
        confluence = frontend_storage_bits(
            "confluence", SchemeConfig(name="confluence"), params)
        boomerang = frontend_storage_bits(
            "boomerang", SchemeConfig(name="boomerang"), params)
        # ~204KB of history alone dwarfs the conventional BTB.
        assert confluence > boomerang + 1_000_000

    def test_accessors_are_consistent(self):
        params = MicroarchParams()
        assert params.frontend_buffer_bits() == (
            params.ftq_storage_bits()
            + params.l1i_prefetch_buffer_bits()
            + params.btb_prefetch_buffer_bits()
        )
