"""SMARTS-style sampled simulation.

The paper measures with the SMARTS methodology [19]: many short
measurement windows drawn across billions of instructions, each preceded
by warm-up, aggregated into a mean with a confidence interval.  This
module provides the equivalent for reduced traces: independent trace
windows (different executor seeds of the same program), each simulated
with its own warm-up, aggregated per metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import MicroarchParams, SchemeConfig
from repro.core.frontend import simulate
from repro.core.metrics import SimulationResult, frontend_stall_coverage, \
    speedup
from repro.errors import SimulationError
from repro.prefetch.factory import build_scheme
from repro.workloads.profiles import build_program, build_trace, get_profile

#: Student-t 97.5% quantiles for small sample sizes (df = 1..30).
_T_TABLE = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)


@dataclass(frozen=True)
class SampleStats:
    """Mean, standard deviation and a 95% confidence half-width."""

    mean: float
    stdev: float
    ci95: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} +/- {self.ci95:.3f} (n={self.n})"


def aggregate(values: Sequence[float]) -> SampleStats:
    """Summarise per-window values with a t-based 95% interval."""
    values = list(values)
    n = len(values)
    if n == 0:
        raise SimulationError("cannot aggregate zero samples")
    mean = sum(values) / n
    if n == 1:
        return SampleStats(mean=mean, stdev=0.0, ci95=0.0, n=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    t = _T_TABLE[min(n - 2, len(_T_TABLE) - 1)]
    return SampleStats(mean=mean, stdev=stdev,
                       ci95=t * stdev / math.sqrt(n), n=n)


@dataclass(frozen=True)
class SampledComparison:
    """Aggregated speedup/coverage of one scheme over the baseline."""

    workload: str
    scheme: str
    speedup: SampleStats
    coverage: SampleStats


def sampled_comparison(
    workload: str,
    scheme_name: str,
    n_windows: int = 4,
    window_blocks: int = 15_000,
    config: Optional[SchemeConfig] = None,
    params: Optional[MicroarchParams] = None,
) -> SampledComparison:
    """Speedup/coverage of *scheme_name* across independent windows.

    Each window is an independently-seeded execution of the workload's
    program (windows ``i`` use executor seed ``1000 + i``), so the
    confidence interval reflects genuine run-to-run variation rather
    than slicing artefacts.
    """
    if n_windows < 1:
        raise SimulationError("need at least one sample window")
    if params is None:
        params = MicroarchParams()
    profile = get_profile(workload)
    generated = build_program(workload)

    speedups: List[float] = []
    coverages: List[float] = []
    for window in range(n_windows):
        seed = 1000 + window
        trace = build_trace(workload, window_blocks, seed=seed)
        per_window: Dict[str, SimulationResult] = {}
        for name in ("baseline", scheme_name):
            scheme = build_scheme(name, params, generated, config
                                  if name == scheme_name else None)
            per_window[name] = simulate(
                trace, scheme, params=params,
                l1d_misses_per_kinstr=profile.l1d_misses_per_kinstr,
            )
        base = per_window["baseline"]
        speedups.append(speedup(base, per_window[scheme_name]))
        coverages.append(frontend_stall_coverage(
            base, per_window[scheme_name]
        ))
    return SampledComparison(
        workload=workload,
        scheme=scheme_name,
        speedup=aggregate(speedups),
        coverage=aggregate(coverages),
    )
