"""Workload profiles, trace generation and trace characterisation.

The six profiles model the paper's workload suite (Table 2): Nutch (web
search), Streaming (Darwin media streaming), Apache and Zeus (web
front-ends), Oracle and DB2 (TPC-C OLTP).  Each profile is a calibrated
:class:`repro.cfg.GeneratorParams` plus trace-time parameters; calibration
targets the paper's own characterisation data (Table 1 BTB MPKI ordering,
Figure 3 spatial locality, Figure 4 branch working-set curves).
"""

from repro.workloads.trace import Trace
from repro.workloads.tracegen import TraceGenerator, generate_trace
from repro.workloads.profiles import (
    WORKLOAD_NAMES,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.analysis import (
    branch_coverage_curve,
    btb_mpki,
    region_access_distribution,
    trace_summary,
)

__all__ = [
    "Trace",
    "TraceGenerator",
    "generate_trace",
    "WORKLOAD_NAMES",
    "WorkloadProfile",
    "get_profile",
    "branch_coverage_curve",
    "btb_mpki",
    "region_access_distribution",
    "trace_summary",
]
